"""The run ledger: an append-only registry of every CLI invocation.

A long exploration leaves artifacts (traces, checkpoints, reports)
scattered wherever the user pointed the flags — and nothing that says
*which run* produced *which files* with *what outcome*.  The ledger is
that missing spine: every ``python -m repro`` run command appends one
JSON record to ``.repro/runs.jsonl`` (override with ``--ledger`` or the
``REPRO_LEDGER`` environment variable, disable with ``--no-ledger``).

Format (``repro-ledger/1``): one self-describing JSON object per line::

    {"format": "repro-ledger/1", "run_id": "20260806T120301-3fa9c1",
     "command": "explore", "argv": ["explore", "--n", "2", ...],
     "started_at": "2026-08-06T12:03:01Z", "duration_seconds": 12.81,
     "exit_code": 3, "verdict": "inconclusive",
     "describe": "exhaustive(task=set-consensus, n=2, k=1, max_crashes=1)",
     "executions": 1742, "interrupted": "deadline 10s exceeded ...",
     "budget": "Budget(deadline=10s)",
     "budget_trips": {"deadline": 1},
     "checkpoint": "ck.jsonl", "parent_run_id": "20260806T115950-81d2aa",
     "artifacts": {"trace_out": "run.jsonl", "metrics_out": "run.prom"},
     "witnesses": [".repro/witnesses/counterexample-1a2b3c4d5e6f.jsonl"]}

The ``witnesses`` key (present when the run captured any) lists the
``repro-witness/1`` bundles archived by :mod:`repro.obs.witness` —
each is a replayable deciding execution that ``repro explain RUN_ID``
can shrink and render.

The ``execset`` key (present when the run recorded an execution-set
digest, see :mod:`repro.obs.execset`) carries
``{"digest": <64 hex>, "records": N, "path": ...}`` — the
content-addressed identity of the set of executions behind the verdict.
``repro runs compare`` prints digest equality alongside its verdict and
audit lines, and ``repro diff`` resolves run ids to these files.

Appends are atomic: a record is a single ``os.write`` to an
``O_APPEND`` descriptor, so concurrent runs interleave whole lines, never
fragments.  Unknown keys are preserved by readers; corrupt lines are
skipped and counted (same tolerance as event traces).

Resume chains: when ``repro explore`` writes a checkpoint, the
checkpoint header records the writing run's ``run_id``; a later
``--resume`` run records that id as its ``parent_run_id``, so the ledger
reconstructs the full chain of a multi-session exploration.

``repro runs list | show | compare`` render the ledger; ``compare``
diffs verdicts, durations and work counts between two runs (exit 1 when
their verdicts disagree).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.fsutil import ensure_parent

FORMAT = "repro-ledger/1"

#: Default ledger location, relative to the working directory.
DEFAULT_PATH = os.path.join(".repro", "runs.jsonl")

#: CLI exit code -> ledger verdict string (inverse of the report command's
#: EXIT_CODES mapping; any other exit code records as ``error``).
EXIT_VERDICTS = {0: "proved", 1: "refuted", 2: "error", 3: "inconclusive"}


def default_ledger_path() -> str:
    """The ledger file to use: ``$REPRO_LEDGER`` or ``.repro/runs.jsonl``."""
    return os.environ.get("REPRO_LEDGER", DEFAULT_PATH)


def new_run_id() -> str:
    """A fresh, sortable run id: UTC timestamp plus a random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


# ----------------------------------------------------------------------
# Reading and writing
# ----------------------------------------------------------------------
def append_record(path: str, record: Dict[str, Any]) -> None:
    """Append one record to the ledger, atomically.

    One ``os.write`` of one line on an ``O_APPEND`` descriptor: the
    kernel serializes concurrent appenders, so the ledger never holds a
    torn record even when several runs finish at once.
    """
    line = json.dumps(record, default=repr, separators=(",", ":")) + "\n"
    ensure_parent(path)
    descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(descriptor, line.encode("utf-8"))
    finally:
        os.close(descriptor)


def read_ledger(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read all records: ``(records, corrupt_lines_skipped)``.

    Missing file reads as empty — a fresh working directory simply has
    no history yet.  Lines that fail to parse, or parse to something
    other than a ``repro-ledger/1`` object, are skipped and counted.
    """
    if not os.path.exists(path):
        return [], 0
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict) or record.get("format") != FORMAT:
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def find_record(
    records: List[Dict[str, Any]], run_id: str
) -> Dict[str, Any]:
    """Resolve a (possibly abbreviated) run id to its record.

    Exact match wins; otherwise a unique prefix suffices.  Raises
    ``ValueError`` with a helpful message when the id is unknown or the
    prefix ambiguous.
    """
    exact = [r for r in records if r.get("run_id") == run_id]
    if exact:
        return exact[-1]
    matches = [r for r in records if str(r.get("run_id", "")).startswith(run_id)]
    if not matches:
        raise ValueError(f"no run {run_id!r} in the ledger")
    distinct = {r.get("run_id") for r in matches}
    if len(distinct) > 1:
        raise ValueError(
            f"run id {run_id!r} is ambiguous: matches "
            + ", ".join(sorted(str(d) for d in distinct))
        )
    return matches[-1]


def resume_chain(
    records: List[Dict[str, Any]], run_id: str
) -> List[Dict[str, Any]]:
    """The full resume chain through ``run_id``, oldest first.

    Walks ``parent_run_id`` links backwards from the given run and then
    forwards (records whose ``parent_run_id`` names the current run), so
    any link of a multi-session exploration resolves the whole chain.
    A parent id with no surviving record (a SIGKILLed worker writes its
    run id only into the checkpoint header, never the ledger) terminates
    the backward walk rather than erroring — the missing attempt still
    shows up in the next record's ``parent_run_id`` field.

    Raises ``ValueError`` (via :func:`find_record`) when ``run_id`` is
    unknown or an ambiguous prefix, and when the ledger holds a cyclic
    or self-referential ``parent_run_id`` chain — a corrupt (or
    hand-edited) ledger must be reported, not walked forever.  Both
    walks are additionally bounded by the ledger size, so no input can
    loop.
    """
    record = find_record(records, run_id)
    by_id = {r.get("run_id"): r for r in records if r.get("run_id")}
    chain = [record]
    seen = {record.get("run_id")}
    current = record
    for _ in range(len(records)):  # backwards to the oldest survivor
        parent = current.get("parent_run_id")
        if not parent or parent not in by_id:
            break
        if parent in seen:
            cycle = [str(r.get("run_id")) for r in chain] + [str(parent)]
            raise ValueError(
                f"run {run_id!r}: cyclic parent_run_id chain in the "
                "ledger: " + " -> ".join(reversed(cycle))
            )
        current = by_id[parent]
        seen.add(parent)
        chain.insert(0, current)
    else:
        raise ValueError(
            f"run {run_id!r}: parent_run_id chain longer than the ledger "
            "— cyclic records?"
        )
    current = record
    for _ in range(len(records)):  # forwards to the newest resume
        # A falsy current id would make every parent-less record look
        # like a successor (None == None); corrupt records cannot chain.
        if not current.get("run_id"):
            break
        successors = [
            r for r in records
            if r.get("parent_run_id") == current.get("run_id")
            and r.get("run_id") not in seen
        ]
        if not successors:
            break
        current = successors[0]
        seen.add(current.get("run_id"))
        chain.append(current)
    else:
        raise ValueError(
            f"run {run_id!r}: resume chain longer than the ledger "
            "— cyclic records?"
        )
    return chain


# ----------------------------------------------------------------------
# The current run (CLI wiring)
# ----------------------------------------------------------------------
class RunRecorder:
    """Accumulates one run's ledger record; written on :meth:`finish`.

    Command implementations annotate it through :func:`annotate` without
    knowing whether a ledger is active at all.
    """

    def __init__(
        self,
        path: str,
        command: str,
        argv: Optional[List[str]] = None,
    ):
        self.path = path
        self.run_id = new_run_id()
        self.record: Dict[str, Any] = {
            "format": FORMAT,
            "run_id": self.run_id,
            "command": command,
            "argv": list(argv or []),
            "started_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
        self._started = time.monotonic()

    def annotate(self, **fields: Any) -> None:
        """Merge fields into the pending record (``None`` values skipped)."""
        for key, value in fields.items():
            if value is not None:
                self.record[key] = value

    def finish(self, exit_code: int) -> Dict[str, Any]:
        """Stamp duration/exit/verdict and append the record to the ledger."""
        self.record["duration_seconds"] = round(
            time.monotonic() - self._started, 3
        )
        self.record["exit_code"] = exit_code
        self.record.setdefault(
            "verdict", EXIT_VERDICTS.get(exit_code, "error")
        )
        append_record(self.path, self.record)
        return self.record


_current: Optional[RunRecorder] = None


def begin_run(
    path: str, command: str, argv: Optional[List[str]] = None
) -> RunRecorder:
    """Install a process-wide recorder for the run now starting."""
    global _current
    _current = RunRecorder(path, command, argv)
    return _current


def current_run() -> Optional[RunRecorder]:
    """The active recorder, or ``None`` when no ledger is being kept."""
    return _current


def annotate(**fields: Any) -> None:
    """Annotate the active run's pending record (no-op without one)."""
    if _current is not None:
        _current.annotate(**fields)


def finish_run(exit_code: int) -> Optional[Dict[str, Any]]:
    """Finalize and append the active record; returns it (or ``None``)."""
    global _current
    if _current is None:
        return None
    recorder, _current = _current, None
    return recorder.finish(exit_code)


def abandon_run() -> None:
    """Drop the active recorder without writing (tests, nested mains)."""
    global _current
    _current = None


# ----------------------------------------------------------------------
# Rendering (the ``repro runs`` subcommands)
# ----------------------------------------------------------------------
def _fmt_duration(value: Any) -> str:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "?"
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.2f}s"


#: The ledger's verdict vocabulary (the values of :data:`EXIT_VERDICTS`).
VERDICTS = ("proved", "refuted", "inconclusive", "error")


def filter_by_verdict(
    records: List[Dict[str, Any]], verdict: str
) -> List[Dict[str, Any]]:
    """Records whose verdict matches (case-insensitive).

    Shared by ``repro runs list --verdict`` and the service's
    ``GET /runs?verdict=`` so scripts and the daemon agree on what
    counts as, say, a PROVED run.  Unknown verdict strings raise
    ``ValueError`` rather than silently matching nothing.
    """
    wanted = verdict.strip().lower()
    if wanted not in VERDICTS:
        raise ValueError(
            f"unknown verdict {verdict!r}; expected one of "
            + ", ".join(v.upper() for v in VERDICTS)
        )
    return [
        r for r in records if str(r.get("verdict", "")).lower() == wanted
    ]


def render_json(records: List[Dict[str, Any]], limit: int = 0) -> str:
    """The ledger as a JSON array (``repro runs list --json``) — records
    verbatim, newest last, so scripts get every key the table elides."""
    if limit and len(records) > limit:
        records = records[-limit:]
    return json.dumps(records, indent=2, default=repr)


def render_list(records: List[Dict[str, Any]], limit: int = 0) -> str:
    """Aligned table of the ledger, newest last (the append order)."""
    if not records:
        return "(ledger is empty)"
    if limit and len(records) > limit:
        records = records[-limit:]
    rows = [("run id", "started (UTC)", "command", "verdict", "duration", "notes")]
    for record in records:
        notes = []
        if record.get("parent_run_id"):
            notes.append(f"resumes {record['parent_run_id']}")
        if record.get("checkpoint"):
            notes.append(f"ckpt {record['checkpoint']}")
        if record.get("executions") is not None:
            notes.append(f"{record['executions']} execs")
        witnesses = record.get("witnesses")
        if isinstance(witnesses, list) and witnesses:
            notes.append(
                f"{len(witnesses)} witness{'es' if len(witnesses) != 1 else ''}"
            )
        rows.append(
            (
                str(record.get("run_id", "?")),
                str(record.get("started_at", "?")),
                str(record.get("command", "?")),
                str(record.get("verdict", "?")),
                _fmt_duration(record.get("duration_seconds")),
                ", ".join(notes),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]) - 1)]
    lines = []
    for row in rows:
        cells = [cell.ljust(widths[i]) for i, cell in enumerate(row[:-1])]
        lines.append(("  ".join(cells) + "  " + row[-1]).rstrip())
    return "\n".join(lines)


def render_show(record: Dict[str, Any]) -> str:
    """Full record, one ``key: value`` line each (dicts pretty-printed)."""
    preferred = [
        "run_id", "parent_run_id", "command", "argv", "started_at",
        "duration_seconds", "exit_code", "verdict", "describe",
        "executions", "interrupted", "budget", "budget_trips",
        "checkpoint", "artifacts", "witnesses", "audit", "execset",
    ]
    keys = [k for k in preferred if k in record]
    keys += [k for k in sorted(record) if k not in keys and k != "format"]
    lines = []
    for key in keys:
        value = record[key]
        if isinstance(value, (dict, list)):
            value = json.dumps(value)
        lines.append(f"{key}: {value}")
    return "\n".join(lines)


def _compare_audit(
    audit_a: Any, audit_b: Any
) -> List[str]:
    """Audit-summary comparison lines for :func:`compare_runs`.

    Records written before the audit existed (or runs without it) carry
    no ``audit`` key — comparison lines appear only when at least one
    side has one, and a missing side renders as ``—`` rather than
    erroring, so old ledgers keep comparing cleanly.
    """
    if not isinstance(audit_a, dict):
        audit_a = None
    if not isinstance(audit_b, dict):
        audit_b = None
    if audit_a is None and audit_b is None:
        return []

    def fmt(audit: Optional[Dict[str, Any]], key: str) -> str:
        if audit is None or key not in audit:
            return "—"
        value = audit[key]
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    lines = ["audit:"]
    for key, label in (
        ("configurations", "configurations"),
        ("distinct_states", "distinct states"),
        ("revisit_ratio", "revisit ratio"),
        ("commuting_fraction", "commuting fraction"),
        ("orbit_savings", "orbit savings"),
    ):
        value_a, value_b = fmt(audit_a, key), fmt(audit_b, key)
        if value_a == "—" and value_b == "—":
            continue
        lines.append(f"  {label}: {value_a} vs {value_b}")
    return lines


def _compare_execset(execset_a: Any, execset_b: Any) -> List[str]:
    """Execution-set digest comparison lines for :func:`compare_runs`.

    Same tolerance contract as :func:`_compare_audit`: records written
    before digests existed (or runs without a recorder) render as
    ``n/a`` and never error, and no lines appear when neither side has
    one.  Digest equality is the set-identity statement — two runs with
    equal digests visited the same executions, whatever the order.
    """
    if not isinstance(execset_a, dict):
        execset_a = None
    if not isinstance(execset_b, dict):
        execset_b = None
    if execset_a is None and execset_b is None:
        return []

    def digest(execset: Optional[Dict[str, Any]]) -> Optional[str]:
        if execset is None:
            return None
        value = execset.get("digest")
        return str(value) if value else None

    digest_a, digest_b = digest(execset_a), digest(execset_b)
    if digest_a and digest_b:
        marker = "SAME SET" if digest_a == digest_b else "DIFFERS"
    else:
        marker = "n/a"
    short_a = digest_a[:16] if digest_a else "n/a"
    short_b = digest_b[:16] if digest_b else "n/a"
    lines = [f"execset digest: {short_a} vs {short_b} ({marker})"]
    records_a = execset_a.get("records") if execset_a else None
    records_b = execset_b.get("records") if execset_b else None
    if records_a is not None or records_b is not None:
        lines.append(f"execset records: {records_a} vs {records_b}")
    return lines


def compare_runs(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Tuple[List[str], bool]:
    """Diff two ledger records: ``(lines, verdicts_agree)``.

    Covers identity (commands, resume relationship), verdicts/exit
    codes, timings (with relative delta) and work counts; artifact paths
    are listed when they differ, and execution-set digests and
    state-audit summaries (revisit ratio, commuting fraction, orbit
    savings) are compared when either run carries one (records
    predating the fields are tolerated as ``n/a``/``—``).
    """
    lines: List[str] = []
    id_a, id_b = a.get("run_id", "A"), b.get("run_id", "B")
    lines.append(f"A: {id_a}  ({a.get('command')}, {a.get('started_at')})")
    lines.append(f"B: {id_b}  ({b.get('command')}, {b.get('started_at')})")
    if b.get("parent_run_id") == id_a:
        lines.append("chain: B resumes A's checkpoint")
    elif a.get("parent_run_id") == id_b:
        lines.append("chain: A resumes B's checkpoint")
    if a.get("argv") != b.get("argv"):
        lines.append(f"argv: A {a.get('argv')} | B {b.get('argv')}")
    verdict_a, verdict_b = a.get("verdict", "?"), b.get("verdict", "?")
    agree = verdict_a == verdict_b
    marker = "=" if agree else "DIFFERS"
    lines.append(
        f"verdict: {verdict_a} vs {verdict_b} ({marker}); "
        f"exit {a.get('exit_code')} vs {b.get('exit_code')}"
    )
    dur_a, dur_b = a.get("duration_seconds"), b.get("duration_seconds")
    if isinstance(dur_a, (int, float)) and isinstance(dur_b, (int, float)):
        delta = (dur_b - dur_a) / dur_a if dur_a else float("inf")
        lines.append(
            f"duration: {_fmt_duration(dur_a)} -> {_fmt_duration(dur_b)} "
            f"({delta:+.0%})"
        )
    # .get() keeps older records readable: a record written before a
    # counter existed (e.g. "recoveries") compares as None, not a crash.
    for key in ("executions", "steps", "faults_injected", "recoveries"):
        va, vb = a.get(key), b.get(key)
        if va is not None or vb is not None:
            lines.append(f"{key}: {va} vs {vb}")
    for key in ("interrupted", "budget", "checkpoint"):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            lines.append(f"{key}: {va} vs {vb}")
    lines.extend(_compare_execset(a.get("execset"), b.get("execset")))
    lines.extend(_compare_audit(a.get("audit"), b.get("audit")))
    arts_a, arts_b = a.get("artifacts") or {}, b.get("artifacts") or {}
    if arts_a != arts_b:
        lines.append(f"artifacts: A {json.dumps(arts_a)} | B {json.dumps(arts_b)}")
    return lines, agree
