"""State-space redundancy audit: measure what pruning would save.

The ROADMAP's hot-loop item names three reductions — DPOR, pid-symmetry,
and a state-fingerprint cache — but nothing measured how much of the
explorer's combinatorial blow-up each one would actually eliminate.
This module is that measurement: an opt-in profiler threaded through
:class:`~repro.runtime.explorer.Explorer` (pass ``auditor=``) that
maintains three online estimators over the walk:

* **Revisit counter** — every visited configuration is fingerprinted
  (:func:`~repro.obs.fingerprint.configuration_fingerprint`); the
  fraction of visits whose fingerprint was already seen is the hit rate
  a state cache would have had, reported overall and per depth.
* **Commuting-pair detector** — adjacent cross-process decision pairs
  are sampled from explored executions and replayed in both orders
  (:func:`~repro.analysis.commutativity.classify_adjacent_pair`); the
  commuting fraction estimates how many interleavings a dynamic
  partial-order reduction would prune.
* **Orbit estimator** — fingerprints are also computed up to process
  renaming (and optional input-value renaming); ``1 - orbits/states``
  bounds the savings of a pid-symmetry quotient.  Optimistic bound:
  object states embedding pids are not rewritten (see
  :mod:`repro.obs.fingerprint`).

The audit is deliberately inert: it is off unless an auditor is passed,
the disabled path costs the explorer one ``None`` check per node (the
bench guard in ``benchmarks/bench_e10_runtime.py`` pins this), it never
touches verdicts, and it charges no fault budget — its replay probes are
attributed as replay in step telemetry.  All output is deterministic:
two audits of the same spec render byte-identical reports (no wall
clock, no iteration-order dependence).

Surfaces: ``repro audit`` (CLI table / ``--html``), the ``audit_summary``
event consumed by :mod:`repro.obs.metrics` (``audit_*`` gauges, also in
Prometheus exposition), ``/status`` in :mod:`repro.obs.live`, the run
ledger (``repro runs compare`` diffs audit summaries), and informational
reduction-headroom rows in the E5/E10 experiment suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import events as _obs_events
from repro.obs.fingerprint import canonical_fingerprint, configuration_fingerprint


@dataclass
class DepthStats:
    """Visit/revisit counts at one DFS depth."""

    visits: int = 0
    revisits: int = 0

    @property
    def ratio(self) -> float:
        return self.revisits / self.visits if self.visits else 0.0


@dataclass
class PairStats:
    """Tally of classified adjacent decision pairs (distinct contexts)."""

    checked: int = 0
    commuting: int = 0
    by_class: Dict[str, int] = field(default_factory=dict)
    truncated: bool = False  # the max_pairs cap cut sampling short

    @property
    def commuting_fraction(self) -> float:
        return self.commuting / self.checked if self.checked else 0.0


class StateAuditor:
    """Online redundancy profiler attached to one exploration.

    Parameters
    ----------
    spec:
        The :class:`~repro.runtime.system.SystemSpec` under exploration,
        needed for commuting-pair replay probes.  May be left ``None``;
        the explorer binds its own spec on attach (:meth:`bind`), and
        without a spec pair sampling is skipped.
    value_alphabet:
        Input values whose consistent renaming should collapse symmetry
        orbits (e.g. the proposed values).  Optional; without it the
        orbit estimate quotients by process renaming only.
    max_pairs:
        Cap on distinct adjacent pairs classified (each costs up to two
        prefix replays).  Hitting the cap sets ``pairs.truncated``.
    pair_stride:
        Classify every ``pair_stride``-th candidate pair position
        (deterministic systematic sample; 1 = every candidate).
    """

    def __init__(
        self,
        spec: Any = None,
        value_alphabet: Optional[Sequence[Any]] = None,
        max_pairs: int = 256,
        pair_stride: int = 1,
    ):
        self.spec = spec
        self.value_alphabet = list(value_alphabet) if value_alphabet else None
        self.max_pairs = max_pairs
        self.pair_stride = max(1, pair_stride)
        self.configurations = 0
        self.revisits = 0
        self.executions = 0
        self.pairs = PairStats()
        self.depths: Dict[int, DepthStats] = {}
        self._seen: Dict[str, int] = {}
        self._orbits: set = set()
        self._pair_cursor = 0
        self._pair_cache: Dict[Tuple[Tuple[int, int], ...], str] = {}

    def bind(self, spec: Any) -> None:
        """Adopt ``spec`` for pair probes if none was given."""
        if self.spec is None:
            self.spec = spec

    # ------------------------------------------------------------------
    # Explorer hooks
    # ------------------------------------------------------------------
    def observe_configuration(self, system: Any, depth: int) -> None:
        """Fingerprint one visited configuration (called once per DFS
        node, interior and leaf alike)."""
        self.configurations += 1
        stats = self.depths.get(depth)
        if stats is None:
            stats = self.depths[depth] = DepthStats()
        stats.visits += 1
        fingerprint = configuration_fingerprint(system)
        count = self._seen.get(fingerprint, 0)
        self._seen[fingerprint] = count + 1
        if count:
            self.revisits += 1
            stats.revisits += 1
        self._orbits.add(canonical_fingerprint(system, self.value_alphabet))

    def observe_execution(self, execution: Any) -> None:
        """Sample adjacent decision pairs from one completed execution."""
        # Imported here, not at module level: repro.obs must stay
        # importable from the runtime/faults layers this analysis sits on.
        from repro.analysis.commutativity import (
            PAIR_COMMUTE,
            PAIR_SAME_PROCESS,
            classify_adjacent_pair,
        )

        self.executions += 1
        if self.spec is None:
            return
        decisions = execution.full_decisions
        for index in range(len(decisions) - 1):
            if decisions[index][0] == decisions[index + 1][0]:
                continue  # program order — not a reorderable pair
            self._pair_cursor += 1
            if (self._pair_cursor - 1) % self.pair_stride:
                continue
            key = tuple(decisions[: index + 2])
            if key in self._pair_cache:
                continue  # shared prefix already classified this context
            if self.pairs.checked >= self.max_pairs:
                self.pairs.truncated = True
                return
            verdict = classify_adjacent_pair(self.spec, decisions, index)
            self._pair_cache[key] = verdict
            if verdict == PAIR_SAME_PROCESS:  # pragma: no cover — filtered above
                continue
            self.pairs.checked += 1
            self.pairs.by_class[verdict] = self.pairs.by_class.get(verdict, 0) + 1
            if verdict == PAIR_COMMUTE:
                self.pairs.commuting += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def distinct_states(self) -> int:
        return len(self._seen)

    @property
    def distinct_orbits(self) -> int:
        return len(self._orbits)

    @property
    def revisit_ratio(self) -> float:
        return self.revisits / self.configurations if self.configurations else 0.0

    @property
    def orbit_savings(self) -> float:
        """Fraction of distinct states a pid-symmetry quotient would merge
        away (optimistic bound — see module docstring)."""
        if not self._seen:
            return 0.0
        return 1.0 - len(self._orbits) / len(self._seen)

    def summary(self) -> Dict[str, Any]:
        """The headline numbers, rounded so serialization is stable."""
        summary: Dict[str, Any] = {
            "configurations": self.configurations,
            "distinct_states": self.distinct_states,
            "revisits": self.revisits,
            "revisit_ratio": round(self.revisit_ratio, 4),
            "distinct_orbits": self.distinct_orbits,
            "orbit_savings": round(self.orbit_savings, 4),
            "pairs_checked": self.pairs.checked,
            "pairs_commuting": self.pairs.commuting,
            "commuting_fraction": round(self.pairs.commuting_fraction, 4),
            "executions": self.executions,
        }
        if self.pairs.truncated:
            summary["pairs_truncated"] = True
        return summary

    def depth_rows(self) -> List[Tuple[int, int, int, float]]:
        """``(depth, visits, revisits, ratio)`` rows in depth order."""
        return [
            (depth, stats.visits, stats.revisits, round(stats.ratio, 4))
            for depth, stats in sorted(self.depths.items())
        ]

    def emit_summary(self) -> None:
        """Publish one ``audit_summary`` event (metrics gauges, live
        ``/status``) when the event bus is enabled."""
        if not _obs_events.is_enabled():
            return
        payload = self.summary()
        payload["depths"] = {
            str(depth): [stats.visits, stats.revisits]
            for depth, stats in sorted(self.depths.items())
        }
        payload["pair_classes"] = {
            name: self.pairs.by_class[name] for name in sorted(self.pairs.by_class)
        }
        _obs_events.emit("audit_summary", **payload)


# ----------------------------------------------------------------------
# Running and rendering
# ----------------------------------------------------------------------
def run_audit(
    spec: Any,
    *,
    max_depth: int = 200,
    max_crashes: int = 0,
    max_recoveries: int = 0,
    value_alphabet: Optional[Sequence[Any]] = None,
    max_pairs: int = 256,
    pair_stride: int = 1,
    explorer_kwargs: Optional[Dict[str, Any]] = None,
) -> Tuple[StateAuditor, Any]:
    """Explore ``spec`` exhaustively with an attached auditor.

    Returns ``(auditor, explorer)`` after draining the walk — the
    explorer is returned so callers can read ``stats`` / ``interrupted``.
    """
    from repro.runtime.explorer import Explorer

    auditor = StateAuditor(
        spec,
        value_alphabet=value_alphabet,
        max_pairs=max_pairs,
        pair_stride=pair_stride,
    )
    explorer = Explorer(
        spec,
        max_depth=max_depth,
        strict=False,
        max_crashes=max_crashes,
        max_recoveries=max_recoveries,
        auditor=auditor,
        **(explorer_kwargs or {}),
    )
    for _execution in explorer.executions():
        pass
    return auditor, explorer


def render_table(auditor: StateAuditor, label: str = "") -> str:
    """Deterministic plain-text audit report (the ``repro audit`` body)."""
    summary = auditor.summary()
    title = f"state-space audit{f' — {label}' if label else ''}"
    lines = [title, "-" * len(title)]
    rows = [
        ("executions", f"{summary['executions']}"),
        ("configurations visited", f"{summary['configurations']}"),
        ("distinct states", f"{summary['distinct_states']}"),
        (
            "revisit ratio (cache headroom)",
            f"{summary['revisit_ratio']:.4f}",
        ),
        ("distinct orbits", f"{summary['distinct_orbits']}"),
        (
            "orbit savings (symmetry headroom)",
            f"{summary['orbit_savings']:.4f}",
        ),
        (
            "adjacent pairs classified",
            f"{summary['pairs_checked']}"
            + (" (sampling capped)" if summary.get("pairs_truncated") else ""),
        ),
        (
            "commuting fraction (DPOR headroom)",
            f"{summary['commuting_fraction']:.4f}",
        ),
    ]
    width = max(len(name) for name, _value in rows)
    lines.extend(f"{name.ljust(width)}  {value}" for name, value in rows)
    if auditor.pairs.by_class:
        lines.append("")
        lines.append("pair classes")
        for name in sorted(auditor.pairs.by_class):
            lines.append(f"  {name}: {auditor.pairs.by_class[name]}")
    depth_rows = auditor.depth_rows()
    if depth_rows:
        lines.append("")
        lines.append("revisit ratio by depth")
        lines.append(" depth  visits  revisits  ratio")
        for depth, visits, revisits, ratio in depth_rows:
            lines.append(
                f"{depth:6d}  {visits:6d}  {revisits:8d}  {ratio:.4f}"
            )
    return "\n".join(lines)


def ledger_summary(auditor: StateAuditor) -> Dict[str, Any]:
    """The compact audit record attached to run-ledger entries and
    compared by ``repro runs compare``."""
    summary = auditor.summary()
    return {
        key: summary[key]
        for key in (
            "configurations",
            "distinct_states",
            "revisit_ratio",
            "commuting_fraction",
            "orbit_savings",
        )
    }
