"""Bench trajectory: the BENCH_runtime.json schema and regression compare.

The benchmark harness (``benchmarks/conftest.py``) records one entry per
bench into ``BENCH_runtime.json``::

    {
      "schema": "repro-bench/1",
      "benches": {
        "test_e10_simulator_throughput": {
          "seconds": 1.234,            # wall time of the bench test
          "steps": 20160,              # optional: workload size
          "steps_per_sec": 163000.5,   # optional: derived throughput
          "obs_overhead_ratio": 1.62   # optional: bench-specific extras
        }
      }
    }

``python -m repro bench-compare OLD.json NEW.json`` diffs two such files
and exits nonzero when any bench regressed by more than the threshold
(default 20%): wall time up, or throughput down.  With a single file
argument the committed baseline is the implicit OLD side:
``python -m repro bench-compare BENCH_runtime.json`` compares against
``benchmarks/BENCH_baseline.json`` (override with the
``REPRO_BENCH_BASELINE`` environment variable).  Sub-centisecond wall
times are pure noise on shared CI runners, so seconds-based comparison
only fires above ``--min-seconds`` (both runs).  Unknown keys and benches
present on only one side are reported but never fail the comparison, so
the trajectory can grow new benches freely.

Beyond the pairwise gate there is a committed *trajectory*:
``benchmarks/BENCH_history.jsonl`` holds one ``repro-bench-history/1``
line per recorded run (CI appends one per merge, labelled with the
commit).  ``repro bench-compare NEW.json --record-history
--history-label abc123`` appends the candidate's summary;
``--history`` prints the per-bench trend.  Entries carry no wall-clock
timestamp — the label (commit sha) is the ordering key, and the file is
append-only, so identical inputs always produce identical lines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

SCHEMA = "repro-bench/1"

HISTORY_SCHEMA = "repro-bench-history/1"

#: The committed perf baseline, relative to the repository root (where CI
#: and developers run the CLI from).
DEFAULT_BASELINE = os.path.join("benchmarks", "BENCH_baseline.json")

#: The committed bench trajectory, one JSON line per recorded run.
DEFAULT_HISTORY = os.path.join("benchmarks", "BENCH_history.jsonl")


def default_baseline_path() -> str:
    """Baseline used when bench-compare gets one file: ``$REPRO_BENCH_BASELINE``
    or the committed ``benchmarks/BENCH_baseline.json``."""
    return os.environ.get("REPRO_BENCH_BASELINE", DEFAULT_BASELINE)


class BenchFileError(ValueError):
    """Raised when a bench file is unreadable or not repro-bench shaped."""


def load_bench_file(path: str) -> Dict[str, Dict[str, Any]]:
    """Read a BENCH_runtime.json file, returning its ``benches`` mapping."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise BenchFileError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BenchFileError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or not isinstance(payload.get("benches"), dict):
        raise BenchFileError(f"{path} is not a {SCHEMA} file (no 'benches' object)")
    return payload["benches"]


def _metric(entry: Dict[str, Any], key: str) -> Optional[float]:
    value = entry.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_benches(
    old: Dict[str, Dict[str, Any]],
    new: Dict[str, Dict[str, Any]],
    threshold: float = 0.20,
    min_seconds: float = 0.01,
) -> Tuple[List[str], List[str]]:
    """Diff two bench mappings.

    Returns ``(report_lines, regressions)`` — every compared bench gets a
    report line; ``regressions`` holds one message per >threshold
    regression (empty means the trajectory held).
    """
    lines: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(old) | set(new)):
        if name not in new:
            lines.append(f"{name}: removed (present only in old file)")
            continue
        if name not in old:
            lines.append(f"{name}: new bench (no baseline)")
            continue
        parts: List[str] = []
        old_seconds = _metric(old[name], "seconds")
        new_seconds = _metric(new[name], "seconds")
        if old_seconds is not None and new_seconds is not None and old_seconds > 0:
            delta = (new_seconds - old_seconds) / old_seconds
            parts.append(f"{old_seconds:.3f}s -> {new_seconds:.3f}s ({delta:+.0%})")
            if (
                delta > threshold
                and old_seconds >= min_seconds
                and new_seconds >= min_seconds
            ):
                regressions.append(
                    f"{name}: wall time {old_seconds:.3f}s -> {new_seconds:.3f}s "
                    f"({delta:+.0%} > {threshold:.0%})"
                )
        old_rate = _metric(old[name], "steps_per_sec")
        new_rate = _metric(new[name], "steps_per_sec")
        if old_rate is not None and new_rate is not None and old_rate > 0:
            delta = (new_rate - old_rate) / old_rate
            parts.append(
                f"{old_rate:,.0f} -> {new_rate:,.0f} steps/s ({delta:+.0%})"
            )
            if delta < -threshold:
                regressions.append(
                    f"{name}: throughput {old_rate:,.0f} -> {new_rate:,.0f} steps/s "
                    f"({delta:+.0%}, threshold -{threshold:.0%})"
                )
        lines.append(f"{name}: " + ("; ".join(parts) if parts else "no comparable metrics"))
    return lines, regressions


#: Per-bench metrics worth tracking across runs.  Everything else in a
#: bench entry is run-local detail and stays out of the trajectory.
_HISTORY_METRICS = (
    "seconds",
    "steps",
    "steps_per_sec",
    "obs_overhead_ratio",
    "audit_overhead_ratio",
)


def history_entry(
    benches: Dict[str, Dict[str, Any]], label: str = ""
) -> Dict[str, Any]:
    """One trajectory line for a BENCH_runtime.json ``benches`` mapping.

    Deliberately carries no wall-clock timestamp (determinism doctrine:
    identical inputs must serialize identically); the ``label`` —
    typically the commit sha CI passes — is the ordering key.
    """
    summary: Dict[str, Dict[str, float]] = {}
    for name in sorted(benches):
        metrics: Dict[str, float] = {}
        for key in _HISTORY_METRICS:
            value = _metric(benches[name], key)
            if value is not None:
                metrics[key] = value
        summary[name] = metrics
    return {"schema": HISTORY_SCHEMA, "label": str(label), "benches": summary}


def append_history(path: str, entry: Dict[str, Any]) -> None:
    """Append one trajectory line to ``path`` (created if missing)."""
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError as error:
        raise BenchFileError(f"cannot append to {path}: {error}") from error


def read_history(path: str) -> List[Dict[str, Any]]:
    """Read a BENCH_history.jsonl trajectory, oldest entry first.

    Lines that are not ``repro-bench-history/1`` objects are skipped, so
    a trajectory survives hand edits and schema growth.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw_lines = handle.readlines()
    except OSError as error:
        raise BenchFileError(f"cannot read {path}: {error}") from error
    entries: List[Dict[str, Any]] = []
    for line in raw_lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict) and isinstance(payload.get("benches"), dict):
            entries.append(payload)
    return entries


def render_history(entries: List[Dict[str, Any]]) -> List[str]:
    """Per-bench trend lines, oldest entry first, benches sorted."""
    if not entries:
        return ["bench history: empty"]
    lines = [f"bench history ({len(entries)} entries):"]
    names = sorted({name for entry in entries for name in entry["benches"]})
    for name in names:
        lines.append(f"  {name}:")
        for entry in entries:
            metrics = entry["benches"].get(name)
            if not isinstance(metrics, dict):
                continue
            label = str(entry.get("label", "")) or "(unlabelled)"
            parts: List[str] = []
            seconds = _metric(metrics, "seconds")
            if seconds is not None:
                parts.append(f"{seconds:.3f}s")
            rate = _metric(metrics, "steps_per_sec")
            if rate is not None:
                parts.append(f"{rate:,.0f} steps/s")
            for extra in ("obs_overhead_ratio", "audit_overhead_ratio"):
                ratio = _metric(metrics, extra)
                if ratio is not None:
                    parts.append(f"{extra.replace('_ratio', '')} {ratio:.2f}x")
            lines.append(
                f"    {label}: " + (", ".join(parts) if parts else "no metrics")
            )
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-compare",
        description="compare two BENCH_runtime.json files; exit 1 on regression",
    )
    parser.add_argument(
        "old",
        help="baseline BENCH_runtime.json (or, with a single argument, "
        "the candidate — compared against the committed baseline)",
    )
    parser.add_argument(
        "new", nargs="?", default=None,
        help="candidate BENCH_runtime.json (omit to compare OLD against "
        "the committed benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative regression that fails the comparison (default 0.20)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.01,
        help="ignore wall-time regressions when either run is below this "
        "(jitter floor, default 0.01s)",
    )
    parser.add_argument(
        "--history", nargs="?", const=DEFAULT_HISTORY, default=None,
        metavar="FILE",
        help="print the per-bench trend from a BENCH_history.jsonl "
        f"trajectory (default {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--record-history", nargs="?", const=DEFAULT_HISTORY, default=None,
        metavar="FILE",
        help="append the candidate run's summary to the trajectory before "
        "printing it (CI passes --history-label \"$GITHUB_SHA\")",
    )
    parser.add_argument(
        "--history-label", default="",
        help="label for the --record-history entry (typically a commit sha)",
    )
    args = parser.parse_args(argv)
    old_path, new_path = args.old, args.new
    if new_path is None:
        old_path, new_path = default_baseline_path(), args.old
        print(f"comparing against committed baseline {old_path}")
    try:
        old = load_bench_file(old_path)
        new = load_bench_file(new_path)
    except BenchFileError as error:
        print(f"bench-compare: {error}", file=sys.stderr)
        return 2
    lines, regressions = compare_benches(
        old, new, threshold=args.threshold, min_seconds=args.min_seconds
    )
    for line in lines:
        print(line)
    if args.record_history is not None:
        try:
            append_history(
                args.record_history, history_entry(new, label=args.history_label)
            )
        except BenchFileError as error:
            print(f"bench-compare: {error}", file=sys.stderr)
            return 2
        print(f"recorded history entry in {args.record_history}", file=sys.stderr)
    if args.history is not None:
        try:
            entries = read_history(args.history)
        except BenchFileError as error:
            print(f"bench-compare: {error}", file=sys.stderr)
            return 2
        print()
        for line in render_history(entries):
            print(line)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:",
              file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} "
          f"({len(lines)} benches compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
