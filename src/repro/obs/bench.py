"""Bench trajectory: the BENCH_runtime.json schema and regression compare.

The benchmark harness (``benchmarks/conftest.py``) records one entry per
bench into ``BENCH_runtime.json``::

    {
      "schema": "repro-bench/1",
      "benches": {
        "test_e10_simulator_throughput": {
          "seconds": 1.234,            # wall time of the bench test
          "steps": 20160,              # optional: workload size
          "steps_per_sec": 163000.5,   # optional: derived throughput
          "obs_overhead_ratio": 1.62   # optional: bench-specific extras
        }
      }
    }

``python -m repro bench-compare OLD.json NEW.json`` diffs two such files
and exits nonzero when any bench regressed by more than the threshold
(default 20%): wall time up, or throughput down.  With a single file
argument the committed baseline is the implicit OLD side:
``python -m repro bench-compare BENCH_runtime.json`` compares against
``benchmarks/BENCH_baseline.json`` (override with the
``REPRO_BENCH_BASELINE`` environment variable).  Sub-centisecond wall
times are pure noise on shared CI runners, so seconds-based comparison
only fires above ``--min-seconds`` (both runs).  Unknown keys and benches
present on only one side are reported but never fail the comparison, so
the trajectory can grow new benches freely.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

SCHEMA = "repro-bench/1"

#: The committed perf baseline, relative to the repository root (where CI
#: and developers run the CLI from).
DEFAULT_BASELINE = os.path.join("benchmarks", "BENCH_baseline.json")


def default_baseline_path() -> str:
    """Baseline used when bench-compare gets one file: ``$REPRO_BENCH_BASELINE``
    or the committed ``benchmarks/BENCH_baseline.json``."""
    return os.environ.get("REPRO_BENCH_BASELINE", DEFAULT_BASELINE)


class BenchFileError(ValueError):
    """Raised when a bench file is unreadable or not repro-bench shaped."""


def load_bench_file(path: str) -> Dict[str, Dict[str, Any]]:
    """Read a BENCH_runtime.json file, returning its ``benches`` mapping."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise BenchFileError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BenchFileError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or not isinstance(payload.get("benches"), dict):
        raise BenchFileError(f"{path} is not a {SCHEMA} file (no 'benches' object)")
    return payload["benches"]


def _metric(entry: Dict[str, Any], key: str) -> Optional[float]:
    value = entry.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare_benches(
    old: Dict[str, Dict[str, Any]],
    new: Dict[str, Dict[str, Any]],
    threshold: float = 0.20,
    min_seconds: float = 0.01,
) -> Tuple[List[str], List[str]]:
    """Diff two bench mappings.

    Returns ``(report_lines, regressions)`` — every compared bench gets a
    report line; ``regressions`` holds one message per >threshold
    regression (empty means the trajectory held).
    """
    lines: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(old) | set(new)):
        if name not in new:
            lines.append(f"{name}: removed (present only in old file)")
            continue
        if name not in old:
            lines.append(f"{name}: new bench (no baseline)")
            continue
        parts: List[str] = []
        old_seconds = _metric(old[name], "seconds")
        new_seconds = _metric(new[name], "seconds")
        if old_seconds is not None and new_seconds is not None and old_seconds > 0:
            delta = (new_seconds - old_seconds) / old_seconds
            parts.append(f"{old_seconds:.3f}s -> {new_seconds:.3f}s ({delta:+.0%})")
            if (
                delta > threshold
                and old_seconds >= min_seconds
                and new_seconds >= min_seconds
            ):
                regressions.append(
                    f"{name}: wall time {old_seconds:.3f}s -> {new_seconds:.3f}s "
                    f"({delta:+.0%} > {threshold:.0%})"
                )
        old_rate = _metric(old[name], "steps_per_sec")
        new_rate = _metric(new[name], "steps_per_sec")
        if old_rate is not None and new_rate is not None and old_rate > 0:
            delta = (new_rate - old_rate) / old_rate
            parts.append(
                f"{old_rate:,.0f} -> {new_rate:,.0f} steps/s ({delta:+.0%})"
            )
            if delta < -threshold:
                regressions.append(
                    f"{name}: throughput {old_rate:,.0f} -> {new_rate:,.0f} steps/s "
                    f"({delta:+.0%}, threshold -{threshold:.0%})"
                )
        lines.append(f"{name}: " + ("; ".join(parts) if parts else "no comparable metrics"))
    return lines, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-compare",
        description="compare two BENCH_runtime.json files; exit 1 on regression",
    )
    parser.add_argument(
        "old",
        help="baseline BENCH_runtime.json (or, with a single argument, "
        "the candidate — compared against the committed baseline)",
    )
    parser.add_argument(
        "new", nargs="?", default=None,
        help="candidate BENCH_runtime.json (omit to compare OLD against "
        "the committed benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative regression that fails the comparison (default 0.20)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.01,
        help="ignore wall-time regressions when either run is below this "
        "(jitter floor, default 0.01s)",
    )
    args = parser.parse_args(argv)
    old_path, new_path = args.old, args.new
    if new_path is None:
        old_path, new_path = default_baseline_path(), args.old
        print(f"comparing against committed baseline {old_path}")
    try:
        old = load_bench_file(old_path)
        new = load_bench_file(new_path)
    except BenchFileError as error:
        print(f"bench-compare: {error}", file=sys.stderr)
        return 2
    lines, regressions = compare_benches(
        old, new, threshold=args.threshold, min_seconds=args.min_seconds
    )
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:",
              file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} "
          f"({len(lines)} benches compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
