"""The job queue behind ``repro serve``: supervised exploration workers.

A *job* is one exploration request (task, n, k, fault budgets, time/step budget,
…) accepted over ``POST /jobs`` and executed by a worker **subprocess**
running the ordinary CLI::

    python -m repro explore --task T --n N --k K [--max-crashes F]
        --checkpoint <job dir>/checkpoint.jsonl --checkpoint-every E
        --trace-out <job dir>/trace-<attempt>.jsonl
        --witness-dir <data dir>/witnesses --ledger <data dir>/runs.jsonl

Workers being processes (not threads) buys three things at once: the
GIL never couples explorations, a crashing worker cannot corrupt the
daemon, and every observability artifact (trace, checkpoint, ledger
record, witness bundle) lands on disk in the exact formats the rest of
the toolchain already reads.

Supervision: :class:`JobManager` runs ``max_workers`` daemon threads,
each popping queued jobs and waiting on its worker process.  Exit codes
0/1/3 are **final verdicts** (the ledger's proved/refuted/inconclusive
mapping); anything else — a signal, an unhandled exception — is a
*crash*.  A crashed worker is restarted from the job's last
``repro-checkpoint/1`` file when one exists (``--resume``, so the retry
visits exactly the executions the dead worker had not yet yielded, and
its ledger record links the dead run via ``parent_run_id``), or from
scratch when none was written yet.  After ``max_retries`` crashes the
job lands as ERROR.  Draining (SIGINT/SIGTERM on the daemon) interrupts
running workers with SIGINT — the CLI's existing handler flushes a
final checkpoint — and marks their jobs INTERRUPTED, resumable by a
future submission.

Everything the HTTP side needs is exposed as snapshots: job state under
one lock, progress by tailing the worker's JSONL trace for
``explore_heartbeat`` events (:class:`TraceTail` — file reads only,
never a lock a worker could hold).  See docs/SERVICE.md.

Causal tracing: every job also gets a daemon-side trace
(``trace-daemon.jsonl``, written by :class:`JobTrace`) holding the spans
only the supervisor can see — the job envelope, ``queue_wait``, each
``attempt_N``, and the ``resume_gap`` between a crash and its resume.
Each attempt's span id is exported to the worker via the
``REPRO_TRACEPARENT`` environment variable, so the worker's own spans
root under their attempt; :mod:`repro.obs.trace_view` stitches the lot
into one causal tree per job.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.checkpoint import peek_checkpoint
from repro.fsutil import ensure_parent
from repro.obs import fingerprint as _fingerprint
from repro.obs import ledger as run_ledger
from repro.obs import trace_view as _trace_view
from repro.obs.spans import TRACEPARENT_ENV, derive_span_id, format_traceparent

# -- job states --------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"  # final: worker returned a verdict exit code (0/1/3)
ERROR = "error"  # final: crashed more than max_retries times
INTERRUPTED = "interrupted"  # daemon drained; checkpoint left behind

FINAL_STATES = (DONE, ERROR)

#: Worker exit codes that are verdicts, not crashes (see
#: :data:`repro.obs.ledger.EXIT_VERDICTS`; 2 = error is deliberately
#: absent — an erroring worker is supervised like a crash).
VERDICT_EXITS = {0: "proved", 1: "refuted", 3: "inconclusive"}


@dataclass
class JobSpec:
    """A validated exploration request (the ``POST /jobs`` body).

    ``seed`` is recorded provenance for the upcoming randomized-scheduler
    ensembles (ROADMAP adversary-models item); the current exhaustive
    explorer does not consume it.
    """

    task: str = "set-consensus"
    n: int = 2
    k: int = 1
    max_crashes: int = 0
    max_recoveries: int = 0
    max_depth: int = 60
    deadline: Optional[float] = None
    max_steps: Optional[int] = None
    checkpoint_every: int = 100
    seed: Optional[int] = None
    label: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            key: value
            for key, value in self.__dict__.items()
            if value is not None and value != ""
        }


def known_tasks() -> List[str]:
    """The task names a job may name — the CLI's own explore registry,
    imported lazily so this module never circularly imports the CLI."""
    from repro.__main__ import EXPLORE_TASKS

    return sorted(EXPLORE_TASKS)


def validate_spec(payload: Any) -> JobSpec:
    """Parse and validate a ``POST /jobs`` body into a :class:`JobSpec`.

    Strict on purpose: unknown keys, unknown tasks, and out-of-range
    values raise ``ValueError`` with a message fit for an HTTP 400 body —
    a silently-defaulted typo would burn hours of worker time on the
    wrong instance.
    """
    if not isinstance(payload, dict):
        raise ValueError("job spec must be a JSON object")
    spec = JobSpec()
    unknown = set(payload) - set(spec.__dict__)
    if unknown:
        raise ValueError(
            "unknown job spec key(s): " + ", ".join(sorted(unknown))
        )
    tasks = known_tasks()
    spec.task = str(payload.get("task", spec.task))
    if spec.task not in tasks:
        raise ValueError(
            f"unknown task {spec.task!r}; expected one of {', '.join(tasks)}"
        )
    for key, minimum in (
        ("n", 1), ("k", 1), ("max_crashes", 0), ("max_recoveries", 0),
        ("max_depth", 1), ("checkpoint_every", 1), ("max_steps", 1),
        ("seed", 0),
    ):
        if key not in payload or payload[key] is None:
            continue
        value = payload[key]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"job spec {key!r} must be an integer")
        if value < minimum:
            raise ValueError(f"job spec {key!r} must be >= {minimum}, got {value}")
        setattr(spec, key, value)
    if payload.get("deadline") is not None:
        deadline = payload["deadline"]
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ValueError("job spec 'deadline' must be a number of seconds")
        if deadline <= 0:
            raise ValueError(f"job spec 'deadline' must be > 0, got {deadline}")
        spec.deadline = float(deadline)
    if "label" in payload:
        if not isinstance(payload["label"], str):
            raise ValueError("job spec 'label' must be a string")
        spec.label = payload["label"]
    return spec


class TraceTail:
    """Incremental reader over a job's per-attempt trace files.

    Tracks the latest ``explore_heartbeat`` (and a few other landmark
    events) without re-reading bytes already seen.  Handler threads call
    :meth:`poll` on demand; a cheap substring prefilter keeps the cost
    proportional to interesting lines, not to the step-event firehose.
    Thread-safe via its own lock — never a lock any worker holds.
    """

    _INTERESTING = (
        b'"explore_heartbeat"',
        b'"checkpoint_written"',
        b'"exploration_interrupted"',
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._file_index = 0
        self._offset = 0
        self.lines = 0
        self.heartbeat: Optional[Dict[str, Any]] = None
        self.last_checkpoint: Optional[Dict[str, Any]] = None
        self.interrupted: Optional[str] = None

    def poll(self, paths: List[str], chunk_limit: int = 8 << 20) -> None:
        """Consume new complete lines from ``paths`` (attempt order)."""
        with self._lock:
            while self._file_index < len(paths):
                path = paths[self._file_index]
                consumed = self._consume(path, chunk_limit)
                # Advance to the next attempt's file only once it exists —
                # the current one can no longer grow then.
                if consumed or self._file_index + 1 >= len(paths):
                    break
                self._file_index += 1
                self._offset = 0

    def _consume(self, path: str, chunk_limit: int) -> bool:
        try:
            with open(path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read(chunk_limit)
        except OSError:
            return False
        if not chunk:
            return False
        end = chunk.rfind(b"\n")
        if end < 0:
            return False  # a partial line mid-write; retry next poll
        data, self._offset = chunk[: end + 1], self._offset + end + 1
        for line in data.splitlines():
            self.lines += 1
            if not any(marker in line for marker in self._INTERESTING):
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            event = record.get("event")
            record.pop("i", None)
            record.pop("event", None)
            if event == "explore_heartbeat":
                self.heartbeat = record
            elif event == "checkpoint_written":
                self.last_checkpoint = record
            elif event == "exploration_interrupted":
                self.interrupted = str(record.get("reason", "interrupted"))
        return True

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {"trace_lines": self.lines}
            if self.heartbeat is not None:
                out["explore"] = dict(self.heartbeat)
            if self.last_checkpoint is not None:
                out["checkpoint"] = dict(self.last_checkpoint)
            if self.interrupted is not None:
                out["interrupted"] = self.interrupted
            return out


class JobTrace:
    """Daemon-side span writer for one job.

    Appends the same ``span_start``/``span_end`` JSONL records a
    worker's ``--trace-out`` sink writes, so
    :mod:`repro.obs.trace_view` stitches daemon and worker files without
    special cases.  Identity is deterministic — ``trace_id`` is the
    content address of the job id, span ids come from
    :func:`repro.obs.spans.derive_span_id` — while ``seconds`` on
    ``span_end`` is measured wall time (the only non-deterministic field
    in the trace, and the one the waterfall exists to show).  A span
    whose ``finish`` never comes (daemon killed mid-job) is simply left
    open; the stitcher renders it unclosed.  Write failures are
    swallowed: tracing must never take down the supervisor.
    """

    def __init__(self, path: str, job_id: str):
        self.path = path
        self.trace_id = _fingerprint.content_id({"job": job_id})
        self._lock = threading.Lock()
        self._seq = 0
        self._count = 0
        #: open spans: span_id -> (name, parent_id, perf_counter start)
        self._open: Dict[str, Tuple[str, Optional[str], float]] = {}

    def begin(
        self, name: str, parent_id: Optional[str] = None, **fields: Any
    ) -> str:
        with self._lock:
            span_id = derive_span_id(name, self._seq, self.trace_id, parent_id)
            self._seq += 1
            self._open[span_id] = (name, parent_id, time.perf_counter())
            self._emit(
                "span_start",
                span=name,
                span_id=span_id,
                parent_id=parent_id,
                trace_id=self.trace_id,
                **fields,
            )
        return span_id

    def finish(
        self, span_id: Optional[str], error: Optional[str] = None
    ) -> None:
        """Close an open span (no-op for ``None`` or an unknown id, so
        callers need not track which error path already closed what)."""
        if span_id is None:
            return
        with self._lock:
            opened = self._open.pop(span_id, None)
            if opened is None:
                return
            name, parent_id, started = opened
            self._emit(
                "span_end",
                span=name,
                seconds=time.perf_counter() - started,
                error=error,
                span_id=span_id,
                parent_id=parent_id,
                trace_id=self.trace_id,
            )

    def _emit(self, event: str, **fields: Any) -> None:
        # Caller holds self._lock (keeps "i" ordered with the spans).
        record: Dict[str, Any] = {"i": self._count, "event": event}
        record.update(fields)
        self._count += 1
        try:
            with open(ensure_parent(self.path), "a", encoding="utf-8") as f:
                f.write(json.dumps(record, default=repr) + "\n")
        except OSError:
            pass


@dataclass
class Job:
    """One submitted exploration and everything known about it."""

    id: str
    spec: JobSpec
    job_dir: str
    state: str = QUEUED
    attempts: int = 0
    verdict: Optional[str] = None
    error: Optional[str] = None
    #: Ledger run ids of the attempts, in order.  A killed attempt's id
    #: is recovered from the checkpoint header it left behind; the final
    #: attempt's from the checkpoint it writes on completion.
    run_ids: List[str] = field(default_factory=list)
    exit_codes: List[int] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    pid: Optional[int] = None
    drain_requested: bool = False
    tail: TraceTail = field(default_factory=TraceTail)
    #: Daemon-side causal trace (None only for hand-built test Jobs).
    trace: Optional[JobTrace] = None
    job_span: Optional[str] = None
    queue_span: Optional[str] = None

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.job_dir, "checkpoint.jsonl")

    @property
    def daemon_trace_path(self) -> str:
        return os.path.join(self.job_dir, _trace_view.DAEMON_TRACE)

    @property
    def worker_log(self) -> str:
        return os.path.join(self.job_dir, "worker.log")

    def trace_path(self, attempt: int) -> str:
        return os.path.join(self.job_dir, f"trace-{attempt}.jsonl")

    def trace_paths(self) -> List[str]:
        return [self.trace_path(a) for a in range(1, self.attempts + 1)]

    def execset_path(self, attempt: int) -> str:
        return os.path.join(self.job_dir, f"execset-{attempt}.jsonl")


def _iso(stamp: Optional[float]) -> Optional[str]:
    if stamp is None:
        return None
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(stamp))


class JobManager:
    """Bounded worker pool executing jobs as supervised subprocesses.

    All mutation happens under one lock; readers get copies.  Worker
    threads only *wait* on their subprocess outside the lock, so HTTP
    handler snapshots can never be blocked by a running exploration.
    """

    def __init__(
        self,
        data_dir: str,
        max_workers: int = 2,
        max_retries: int = 2,
        worker_prefix: Optional[List[str]] = None,
    ):
        self.data_dir = os.path.abspath(data_dir)
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        self.ledger_path = os.path.join(self.data_dir, "runs.jsonl")
        self.witness_dir = os.path.join(self.data_dir, "witnesses")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.witness_dir, exist_ok=True)
        self.max_workers = max(1, int(max_workers))
        self.max_retries = max(0, int(max_retries))
        #: Command that becomes a worker when job argv is appended —
        #: overridable by tests to simulate permanently-crashing workers.
        self.worker_prefix = worker_prefix or [sys.executable, "-m", "repro"]
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: List[str] = []
        self._jobs: Dict[str, Job] = {}
        self._procs: Dict[str, subprocess.Popen] = {}
        self._draining = False
        self._closed = False
        #: stitched-trace cache: job id -> (per-file sizes key, trace)
        self._trace_cache: Dict[str, Tuple[Any, _trace_view.StitchedTrace]] = {}
        self._seq = self._initial_seq()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-job-worker-{index}",
                daemon=True,
            )
            for index in range(self.max_workers)
        ]
        for thread in self._threads:
            thread.start()

    def _initial_seq(self) -> int:
        """Continue job numbering across daemon restarts on one data dir."""
        highest = 0
        try:
            for name in os.listdir(self.jobs_dir):
                if name.startswith("job-"):
                    try:
                        highest = max(highest, int(name[4:].split("-")[0]))
                    except ValueError:
                        continue
        except OSError:
            pass
        return highest

    # -- submission ----------------------------------------------------
    def submit(self, payload: Any) -> Dict[str, Any]:
        """Validate and enqueue a job; returns its snapshot.

        Raises ``ValueError`` on a bad spec and ``RuntimeError`` once the
        manager is draining (the HTTP layer maps those to 400/503).
        """
        spec = validate_spec(payload)
        with self._lock:
            if self._draining:
                raise RuntimeError("service is draining; not accepting jobs")
            self._seq += 1
            job_id = f"job-{self._seq:04d}"
            job = Job(
                id=job_id,
                spec=spec,
                job_dir=os.path.join(self.jobs_dir, job_id),
            )
            os.makedirs(job.job_dir, exist_ok=True)
            job.trace = JobTrace(job.daemon_trace_path, job_id)
            job.job_span = job.trace.begin(
                "job", job=job_id, task=spec.task, n=spec.n, k=spec.k
            )
            job.queue_span = job.trace.begin(
                "queue_wait", parent_id=job.job_span
            )
            self._jobs[job_id] = job
            self._queue.append(job_id)
            self._wakeup.notify()
            return self._snapshot_locked(job)

    # -- worker side ---------------------------------------------------
    def worker_argv(self, job: Job, resume: bool) -> List[str]:
        """The CLI argv (after the ``repro`` prefix) for one attempt."""
        spec = job.spec
        if resume:
            argv = ["explore", "--resume", job.checkpoint_path]
        else:
            argv = [
                "explore",
                "--task", spec.task,
                "--n", str(spec.n),
                "--k", str(spec.k),
                "--max-depth", str(spec.max_depth),
                "--max-crashes", str(spec.max_crashes),
                "--max-recoveries", str(spec.max_recoveries),
            ]
        argv += [
            "--checkpoint", job.checkpoint_path,
            "--checkpoint-every", str(spec.checkpoint_every),
            "--trace-out", job.trace_path(job.attempts),
            "--witness-dir", self.witness_dir,
            "--ledger", self.ledger_path,
            "--execset-out", job.execset_path(job.attempts),
        ]
        if spec.deadline is not None:
            argv += ["--deadline", str(spec.deadline)]
        if spec.max_steps is not None:
            argv += ["--max-steps", str(spec.max_steps)]
        return argv

    def _worker_env(self) -> Dict[str, str]:
        """Worker environment: guarantee ``repro`` is importable even
        when the daemon runs from a source tree."""
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        return env

    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._queue:
                    return
                job_id = self._queue.pop(0)
                job = self._jobs[job_id]
                job.state = RUNNING
                job.started_at = time.time()
            if job.trace is not None:
                job.trace.finish(job.queue_span)
            try:
                self._run_job(job)
            except Exception as error:  # supervisor bugs land as ERROR, loudly
                with self._lock:
                    job.state = ERROR
                    job.error = f"supervisor failure: {error!r}"
                    job.finished_at = time.time()
                if job.trace is not None:
                    job.trace.finish(job.job_span, error="supervisor_failure")

    def _run_job(self, job: Job) -> None:
        crashes = 0
        trace = job.trace
        resume_span: Optional[str] = None
        while True:
            checkpoint = peek_checkpoint(job.checkpoint_path)
            resume = checkpoint is not None and not checkpoint.done
            if checkpoint is not None and checkpoint.run_id:
                with self._lock:
                    if checkpoint.run_id not in job.run_ids:
                        # The dead attempt's ledger id survives only in the
                        # checkpoint header it flushed — record it so the
                        # resume chain is visible even though the killed
                        # worker never wrote its own ledger record.
                        job.run_ids.append(checkpoint.run_id)
            if checkpoint is not None and checkpoint.done:
                # Nothing left to explore: the dead worker finished the
                # walk but was killed before exiting cleanly.
                if trace is not None:
                    trace.finish(resume_span)
                self._finish(job, verdict="proved", exit_code=0)
                return
            with self._lock:
                job.attempts += 1
                attempt = job.attempts
            attempt_span: Optional[str] = None
            env = self._worker_env()
            if trace is not None:
                # The resume gap ends the instant the next attempt begins.
                trace.finish(resume_span)
                resume_span = None
                attempt_span = trace.begin(
                    f"attempt_{attempt}",
                    parent_id=job.job_span,
                    resume=resume,
                )
                # Root the worker's whole trace under this attempt span.
                env[TRACEPARENT_ENV] = format_traceparent(
                    trace.trace_id, attempt_span
                )
            argv = self.worker_prefix + self.worker_argv(job, resume=resume)
            ensure_parent(job.worker_log)
            with open(job.worker_log, "a", encoding="utf-8") as log:
                log.write(f"--- attempt {attempt}: {' '.join(argv)}\n")
                log.flush()
                try:
                    proc = subprocess.Popen(
                        argv,
                        stdout=log,
                        stderr=subprocess.STDOUT,
                        env=env,
                        cwd=self.data_dir,
                    )
                except OSError as error:
                    with self._lock:
                        job.state = ERROR
                        job.error = f"cannot spawn worker: {error}"
                        job.finished_at = time.time()
                    if trace is not None:
                        trace.finish(attempt_span, error="spawn_failed")
                        trace.finish(job.job_span, error="spawn_failed")
                    return
                with self._lock:
                    job.pid = proc.pid
                    self._procs[job.id] = proc
                try:
                    returncode = proc.wait()
                finally:
                    with self._lock:
                        job.pid = None
                        self._procs.pop(job.id, None)
            if trace is not None:
                trace.finish(
                    attempt_span,
                    error=(
                        None
                        if returncode in VERDICT_EXITS
                        else f"exit_{returncode}"
                    ),
                )
            with self._lock:
                job.exit_codes.append(returncode)
                drained = job.drain_requested
            final = peek_checkpoint(job.checkpoint_path)
            if final is not None and final.run_id:
                with self._lock:
                    if final.run_id not in job.run_ids:
                        job.run_ids.append(final.run_id)
            if drained:
                with self._lock:
                    job.state = INTERRUPTED
                    job.error = "daemon drained; resume from the checkpoint"
                    job.finished_at = time.time()
                if trace is not None:
                    trace.finish(job.job_span, error="interrupted")
                return
            if returncode in VERDICT_EXITS:
                self._finish(
                    job,
                    verdict=VERDICT_EXITS[returncode],
                    exit_code=returncode,
                )
                return
            crashes += 1
            if crashes > self.max_retries:
                with self._lock:
                    job.state = ERROR
                    job.error = (
                        f"worker crashed {crashes} time(s) "
                        f"(last exit {returncode}); retries exhausted"
                    )
                    job.finished_at = time.time()
                if trace is not None:
                    trace.finish(job.job_span, error="retries_exhausted")
                return
            # else: loop — resume from the checkpoint if one exists.  The
            # gap between the crash and the respawn is real wall time the
            # job loses; span it so the waterfall shows it.
            if trace is not None:
                resume_span = trace.begin(
                    "resume_gap",
                    parent_id=job.job_span,
                    after_attempt=attempt,
                )

    def _finish(self, job: Job, verdict: str, exit_code: int) -> None:
        with self._lock:
            job.state = DONE
            job.verdict = verdict
            job.finished_at = time.time()
            if not job.exit_codes or job.exit_codes[-1] != exit_code:
                job.exit_codes.append(exit_code)
        if job.trace is not None:
            job.trace.finish(job.job_span)

    # -- reading -------------------------------------------------------
    def _snapshot_locked(self, job: Job) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "id": job.id,
            "spec": job.spec.as_dict(),
            "state": job.state,
            "attempts": job.attempts,
            "run_ids": list(job.run_ids),
            "exit_codes": list(job.exit_codes),
            "submitted_at": _iso(job.submitted_at),
            "started_at": _iso(job.started_at),
            "finished_at": _iso(job.finished_at),
            "job_dir": job.job_dir,
        }
        if job.verdict is not None:
            snap["verdict"] = job.verdict
        if job.error is not None:
            snap["error"] = job.error
        if job.pid is not None:
            snap["pid"] = job.pid
        return snap

    def job_snapshot(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's full status, heartbeat-fed progress included."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            snap = self._snapshot_locked(job)
            traces = job.trace_paths()
            tail = job.tail
        tail.poll(traces)  # file reads; outside the manager lock
        snap.update(tail.snapshot())
        return snap

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            jobs = [self._snapshot_locked(j) for j in self._jobs.values()]
        return sorted(jobs, key=lambda j: j["id"])

    def counts(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(jobs per state, verdict tallies of DONE jobs) for /metrics."""
        states = {s: 0 for s in (QUEUED, RUNNING, DONE, ERROR, INTERRUPTED)}
        verdicts: Dict[str, int] = {}
        with self._lock:
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
                if job.verdict is not None:
                    verdicts[job.verdict] = verdicts.get(job.verdict, 0) + 1
        return states, verdicts

    def read_ledger(self) -> Tuple[List[Dict[str, Any]], int]:
        """The daemon's ledger (every worker appends here)."""
        return run_ledger.read_ledger(self.ledger_path)

    def stitched_trace(self, job_id: str) -> Optional[_trace_view.StitchedTrace]:
        """The job's stitched causal trace (daemon + all worker attempts),
        or ``None`` for an unknown job.

        Cached per job, keyed on the trace files and their sizes, so
        repeated dashboard/metrics reads of a finished job stitch once —
        and a still-running job restitches only when its traces grew.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job_dir = job.job_dir
        files = _trace_view.job_dir_trace_files(job_dir)
        key = []
        for path in files:
            try:
                key.append((path, os.path.getsize(path)))
            except OSError:
                key.append((path, -1))
        cache_key = tuple(key)
        with self._lock:
            cached = self._trace_cache.get(job_id)
            if cached is not None and cached[0] == cache_key:
                return cached[1]
        trace = _trace_view.stitch_files(files)  # file reads; no lock held
        with self._lock:
            self._trace_cache[job_id] = (cache_key, trace)
        return trace

    def trace_totals(self) -> Tuple[int, Dict[str, float]]:
        """``(stitched span count, self-seconds per span name)`` summed
        over finished jobs — the ``trace_spans_total`` /
        ``span_self_seconds`` Prometheus samples.  Finished jobs only:
        their traces are immutable, so this is one cache hit per job."""
        with self._lock:
            final_ids = sorted(
                job.id
                for job in self._jobs.values()
                if job.state in FINAL_STATES
            )
        total = 0
        self_seconds: Dict[str, float] = {}
        for job_id in final_ids:
            trace = self.stitched_trace(job_id)
            if trace is None:
                continue
            total += trace.span_count
            for name, seconds in trace.self_seconds_by_name().items():
                self_seconds[name] = self_seconds.get(name, 0.0) + seconds
        return total, self_seconds

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout: float = 15.0) -> None:
        """Stop accepting jobs, interrupt running workers, join threads.

        Running workers get SIGINT — the explore CLI's handler flushes a
        final checkpoint and exits 3 — and their jobs become
        INTERRUPTED.  Workers that ignore SIGINT past ``timeout`` are
        killed.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._draining = True
            self._closed = True
            for job_id, proc in list(self._procs.items()):
                self._jobs[job_id].drain_requested = True
                try:
                    proc.send_signal(signal.SIGINT)
                except OSError:
                    pass
            self._wakeup.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            remaining = max(0.1, deadline - time.monotonic())
            thread.join(timeout=remaining)
        with self._lock:
            stragglers = list(self._procs.values())
        for proc in stragglers:
            try:
                proc.kill()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
