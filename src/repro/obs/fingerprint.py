"""Content-addressed hashing shared by witnesses, the state audit, and spans.

One hashing convention, three consumers.  :mod:`repro.obs.witness` names
bundle files by a digest of the deciding execution;
:mod:`repro.obs.audit` fingerprints every *configuration* the explorer
visits to measure how much of the schedule tree revisits known states;
:mod:`repro.obs.spans` mints deterministic span/trace ids from
:func:`content_id` so causal traces stitch identically live and on
replay.  Keeping all three on the same helper means bundle ids, audit
state hashes, and span ids cannot drift apart — and the configuration
fingerprint defined here is the exact key a future state-fingerprint
cache would use (see ROADMAP, "make the hot loop 10x faster").

A configuration is hashed from its structured snapshot
(:meth:`repro.runtime.system.System.configuration`): shared-object states
plus one component per process.  Process control state is extensional —
a generator cannot be hashed, but it is a deterministic function of its
program (fixed per pid) and the responses delivered to it, so
``(status, responses, pending-op)`` names it exactly.  Crash decisions
are covered: a crashed process carries status ``"crashed"``, so a
crashed and a non-crashed configuration never share a fingerprint.

Two fingerprints per configuration:

* :func:`configuration_fingerprint` — exact identity.  Two equal
  fingerprints mean a state cache could have skipped the second visit.
* :func:`canonical_fingerprint` — identity up to process renaming (the
  per-process components are sorted) and, optionally, up to a consistent
  renaming of the declared input values (:func:`abstract_values`).  The
  quotient estimates pid-symmetry orbits.  It is an *estimator*: object
  states that embed pids or ports are not rewritten, so configurations
  that a true orbit computation would keep apart can merge — read the
  resulting savings as an optimistic bound, not a sound reduction.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

#: Hex digits kept from the sha256 for configuration fingerprints.  Long
#: enough that accidental collisions are negligible at audit scales
#: (2^-64 birthday bound around four billion states), short enough that
#: the revisit table stays cheap.
FINGERPRINT_LENGTH = 16


def stable_json(value: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace, ``repr`` fallback
    for non-serializable leaves.  The single serialization every content
    digest in this package is computed over."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=repr)


def content_digest(text: str) -> str:
    """Full sha256 hex digest of ``text``."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def content_id(value: Any, length: int = 12) -> str:
    """Short content address of a JSON-serializable value: the first
    ``length`` hex digits of the sha256 of its :func:`stable_json` form.
    Witness bundle ids use the default length of 12."""
    return content_digest(stable_json(value))[:length]


# ----------------------------------------------------------------------
# Configuration fingerprints
# ----------------------------------------------------------------------
def configuration_fingerprint(system: Any) -> str:
    """Exact content address of a live configuration.

    ``system`` is a :class:`~repro.runtime.system.System`; the hash
    covers its :meth:`~repro.runtime.system.System.configuration`
    snapshot verbatim (object states, and per-process status / delivered
    responses / pending operation, crashes included via status).
    """
    return content_digest(stable_json(system.configuration()))[:FINGERPRINT_LENGTH]


def canonical_fingerprint(
    system: Any, value_alphabet: Optional[Sequence[Any]] = None
) -> str:
    """Content address of a configuration's pid-symmetry orbit estimate.

    Equal for two configurations that differ only by a permutation of
    their process components (and, when ``value_alphabet`` is given, by a
    consistent renaming of those input values).
    """
    return content_digest(
        canonical_body(system.configuration(), value_alphabet)
    )[:FINGERPRINT_LENGTH]


def canonical_body(
    snapshot: Dict[str, Any], value_alphabet: Optional[Sequence[Any]] = None
) -> str:
    """The canonical serialized form behind :func:`canonical_fingerprint`.

    Process components are serialized individually and sorted, which is
    invariant under any permutation of the process list (the property
    tests pin this).  Value abstraction, when requested, runs *after*
    sorting, so it cannot break the invariance.
    """
    processes = sorted(stable_json(c) for c in snapshot.get("processes", []))
    body = stable_json(
        {"objects": snapshot.get("objects", {}), "processes": processes}
    )
    if value_alphabet:
        body = abstract_values(body, value_alphabet)
    return body


def abstract_values(text: str, alphabet: Sequence[Any]) -> str:
    """Rewrite occurrences of the alphabet values in serialized form to
    placeholders numbered by first occurrence.

    Two serialized configurations that differ only by a consistent
    renaming of the alphabet values map to the same text, because the
    placeholder numbering follows textual position, not value identity.
    Values are matched by their JSON-encoded ``repr`` (the leaf encoding
    :func:`stable_json` produces), longest needle first so one value's
    encoding being a substring of another's cannot corrupt the rewrite.
    """
    needles: List[str] = []
    seen = set()
    for value in alphabet:
        needle = json.dumps(repr(value))[1:-1]
        if needle and needle not in seen:
            seen.add(needle)
            needles.append(needle)
    first_seen = []
    for needle in needles:
        index = text.find(needle)
        if index >= 0:
            first_seen.append((index, needle))
    mapping = {
        needle: f"§{rank}§"
        for rank, (_index, needle) in enumerate(sorted(first_seen))
    }
    for needle in sorted(mapping, key=len, reverse=True):
        text = text.replace(needle, mapping[needle])
    return text
