"""Rate-limited stderr progress for long explorer and suite runs.

A :class:`ProgressReporter` subscribes to the event bus, tallies the
events that indicate forward motion (steps, explored schedules, visited
states, open spans), and repaints a single status line at most every
``min_interval`` seconds — so a multi-minute exhaustive check shows
*why* it is still running without flooding the terminal or slowing the
run (the rate limit is one ``time.monotonic`` call per event).

Wire-up is one line each way::

    reporter = ProgressReporter().install()
    try:
        ...  # any instrumented work
    finally:
        reporter.close()   # unsubscribes and prints the final totals

The CLI exposes this as ``python -m repro <cmd> --progress``.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

from repro.obs import events as _events


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressReporter:
    """Event-bus subscriber that paints a throttled status line."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.25,
        clock=time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_paint = 0.0
        self._last_width = 0
        self.steps = 0
        self.schedules = 0
        self.states = 0
        self.runs = 0
        self.current_phase: Optional[str] = None
        #: Latest coverage/ETA estimate from ``explore_heartbeat`` events
        #: (``None`` until the explorer's estimator warms up).
        self.coverage: Optional[float] = None
        self.eta_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # Bus integration
    # ------------------------------------------------------------------
    def install(self) -> "ProgressReporter":
        _events.subscribe(self)
        return self

    def close(self) -> None:
        """Unsubscribe and print the final totals on their own line."""
        _events.unsubscribe(self)
        self._paint(final=True)

    def __call__(self, name: str, fields: Dict[str, Any]) -> None:
        if name == "step":
            self.steps += 1
        elif name == "schedule_explored":
            self.schedules += 1
        elif name == "states_visited":
            self.states += fields.get("states", 0)
        elif name == "run_end":
            self.runs += 1
        elif name == "span_start":
            self.current_phase = fields.get("span")
        elif name == "span_end":
            if self.current_phase == fields.get("span"):
                self.current_phase = None
        elif name == "explore_heartbeat":
            coverage = fields.get("coverage")
            if isinstance(coverage, (int, float)) and not isinstance(coverage, bool):
                self.coverage = float(coverage)
            eta = fields.get("eta_seconds")
            if isinstance(eta, (int, float)) and not isinstance(eta, bool):
                self.eta_seconds = float(eta)
        else:
            return
        now = self._clock()
        if now - self._last_paint >= self.min_interval:
            self._last_paint = now
            self._paint()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _line(self) -> str:
        elapsed = self._clock() - self._started
        parts = [f"{self.steps:,} steps"]
        if self.schedules:
            parts.append(f"{self.schedules:,} schedules")
        if self.runs:
            parts.append(f"{self.runs:,} runs")
        if self.states:
            parts.append(f"{self.states:,} states")
        if self.current_phase:
            parts.append(f"phase {self.current_phase}")
        if self.coverage is not None:
            parts.append(f"~{self.coverage:.0%} covered")
        if self.eta_seconds is not None:
            parts.append(f"ETA {_fmt_eta(self.eta_seconds)}")
        parts.append(f"{elapsed:.1f}s")
        return "progress: " + " · ".join(parts)

    def _paint(self, final: bool = False) -> None:
        line = self._line()
        pad = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        end = "\n" if final else ""
        try:
            self.stream.write("\r" + line + pad + end)
            self.stream.flush()
        except (ValueError, OSError):
            pass  # stream already closed (e.g. interpreter teardown)
