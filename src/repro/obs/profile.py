"""Deterministic profiler: fold the event stream into a span call tree.

The profiler consumes the same ordered event stream the metrics registry
does — live via :meth:`Profiler.install`, or replayed from a
``--trace-out`` JSONL file — and builds a tree of span *instances*
(``span_start``/``span_end``) with every ``step`` event attributed to the
innermost open span and its ``(object, method)`` pair.  Because the
input is a deterministic event stream, the resulting tree and its folded
export are byte-identical across live collection and replay of the same
trace.

Two questions it answers that raw counters cannot:

* **where do steps go?** — ``folded_stacks()`` exports collapsed stacks
  (``span;span;object.method count``) in the format flamegraph.pl and
  speedscope consume (``repro stats TRACE --flame out.folded``);
* **what does fork-by-replay cost?** — the explorer marks re-executed
  prefix steps with ``replay=True`` (see
  :meth:`repro.runtime.explorer.Explorer._replay`), so
  :meth:`Profiler.replay_overhead` reports redundant steps per useful
  step, matching ``Explorer.stats.replay_overhead``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as _events

StepKey = Tuple[str, str]  # (object, method)


def _num(value: Any, default: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return default
    return float(value)


class SpanNode:
    """One span instance (or the synthetic root) in the profile tree."""

    __slots__ = ("name", "parent", "seconds", "children", "steps", "replayed")

    def __init__(self, name: str, parent: Optional["SpanNode"] = None):
        self.name = name
        self.parent = parent
        self.seconds: Optional[float] = None  # filled by span_end
        self.children: List["SpanNode"] = []
        self.steps: Dict[StepKey, int] = {}
        self.replayed: Dict[StepKey, int] = {}

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def own_steps(self) -> int:
        """Steps attributed directly to this span (not to children)."""
        return sum(self.steps.values())

    def total_steps(self) -> int:
        """Steps in this span and everything nested inside it."""
        return self.own_steps() + sum(c.total_steps() for c in self.children)

    def child_seconds(self) -> float:
        return sum(c.seconds or 0.0 for c in self.children)

    def self_seconds(self) -> Optional[float]:
        """Wall time spent in this span outside any child span."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.child_seconds())


class Profiler:
    """Event consumer building the span call tree.

    Feed it an ordered event stream — ``consume_event(name, fields)`` per
    event, or subscribe it to the live bus with :meth:`install` — then
    read :attr:`root`, :meth:`folded_stacks`, :meth:`render_tree`.
    Unknown events are ignored; out-of-order ``span_end`` events close
    back to the nearest matching open span rather than corrupting the
    stack (mirroring the tolerance in :class:`repro.obs.spans.Span`).
    """

    def __init__(self) -> None:
        self.root = SpanNode("<root>")
        self._open: List[SpanNode] = [self.root]
        self.steps_total = 0
        self.steps_replayed = 0
        self.spans_seen = 0

    # ------------------------------------------------------------------
    # Event consumption (live subscription or JSONL replay)
    # ------------------------------------------------------------------
    def consume_event(self, name: str, fields: Dict[str, Any]) -> None:
        if name == "step":
            node = self._open[-1]
            key = (str(fields.get("object")), str(fields.get("method")))
            node.steps[key] = node.steps.get(key, 0) + 1
            self.steps_total += 1
            if fields.get("replay"):
                node.replayed[key] = node.replayed.get(key, 0) + 1
                self.steps_replayed += 1
        elif name == "span_start":
            parent = self._open[-1]
            node = SpanNode(str(fields.get("span", "?")), parent=parent)
            parent.children.append(node)
            self._open.append(node)
            self.spans_seen += 1
        elif name == "span_end":
            span_name = str(fields.get("span", "?"))
            for index in range(len(self._open) - 1, 0, -1):
                if self._open[index].name == span_name:
                    self._open[index].seconds = _num(fields.get("seconds"))
                    del self._open[index:]
                    break

    def install(self) -> "Profiler":
        """Attach to the event bus (live collection)."""
        _events.subscribe(self.consume_event)
        return self

    def uninstall(self) -> None:
        _events.unsubscribe(self.consume_event)

    # ------------------------------------------------------------------
    # Replay accounting
    # ------------------------------------------------------------------
    @property
    def steps_on_path(self) -> int:
        """Steps that were not explorer re-executions."""
        return self.steps_total - self.steps_replayed

    def replay_overhead(self) -> float:
        """Redundant (replayed) steps per on-path step."""
        if not self.steps_on_path:
            return 0.0
        return self.steps_replayed / self.steps_on_path

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def folded_stacks(self, metric: str = "steps") -> List[str]:
        """Collapsed-stack lines (``frame;frame value``), sorted.

        ``metric="steps"`` weights ``span;…;object.method`` leaves by step
        count; ``metric="seconds"`` weights span frames by *self* wall
        time in integer microseconds.  Both feed flamegraph.pl unchanged.
        """
        if metric not in ("steps", "seconds"):
            raise ValueError(f"unknown folded-stack metric: {metric!r}")
        weights: Dict[str, int] = {}

        def add(stack: str, value: int) -> None:
            if value > 0:
                weights[stack] = weights.get(stack, 0) + value

        def walk(node: SpanNode, frames: List[str]) -> None:
            if node is not self.root:
                frames = frames + [node.name]
            if metric == "steps":
                for (obj, method), count in node.steps.items():
                    add(";".join(frames + [f"{obj}.{method}"]), count)
            elif frames:
                self_seconds = node.self_seconds()
                if self_seconds is not None:
                    add(";".join(frames), round(self_seconds * 1e6))
            for child in node.children:
                walk(child, frames)

        walk(self.root, [])
        return [f"{stack} {value}" for stack, value in sorted(weights.items())]

    def render_tree(self, max_depth: int = 6) -> str:
        """Aligned text rendering of the span tree (the ``stats`` body).

        Sibling spans with the same name are aggregated per level, so a
        loop of 720 ``explore`` spans reads as one line with a count.
        """
        lines: List[str] = []

        def walk(nodes: List[SpanNode], indent: int) -> None:
            if indent >= max_depth:
                return
            grouped: Dict[str, List[SpanNode]] = {}
            for node in nodes:
                grouped.setdefault(node.name, []).append(node)
            ordered = sorted(
                grouped.items(),
                key=lambda item: -sum(n.seconds or 0.0 for n in item[1]),
            )
            for name, instances in ordered:
                seconds = sum(n.seconds or 0.0 for n in instances)
                steps = sum(n.total_steps() for n in instances)
                calls = len(instances)
                label = "  " * indent + name
                lines.append(
                    f"{label:<28} {seconds:9.3f}s  {steps:10d} steps"
                    + (f"  x{calls}" if calls > 1 else "")
                )
                walk([c for n in instances for c in n.children], indent + 1)

        walk(self.root.children, 0)
        if self.root.own_steps():
            lines.append(
                f"{'(outside any span)':<28} {'':>10}  "
                f"{self.root.own_steps():10d} steps"
            )
        if not lines:
            return "(no spans recorded)"
        return "\n".join(lines)
