"""Exception hierarchy for the :mod:`repro` laboratory.

All errors raised by the library derive from :class:`ReproError`, so client
code can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class IllegalOperationError(ReproError):
    """An operation violated an object's sequential specification.

    Examples: re-using a one-shot port, proposing ``None`` to a consensus
    object, invoking an unknown method name, or exceeding an object's
    invocation budget.

    The papers in this line of work specify that misuse "hangs the system in
    a manner that cannot be detected".  Raising is far more debuggable, so it
    is the default; objects constructed with ``hang_on_misuse=True`` recover
    the literal semantics by blocking the calling process forever instead.
    """


class ObjectMisuseHang(ReproError):
    """Internal signal: the calling process must block forever.

    Raised by objects configured with ``hang_on_misuse=True``; intercepted by
    the runtime, which parks the process in the ``BLOCKED`` state.  Client
    code never sees this exception.
    """


class SchedulingError(ReproError):
    """The scheduler made an impossible request (e.g. stepping a finished
    process, or scheduling when no process is enabled)."""


class ProtocolError(ReproError):
    """A protocol/program produced something the runtime cannot interpret
    (e.g. yielded a non-operation, or referenced an unknown shared object)."""


class ExplorationLimitError(ReproError):
    """Bounded model checking exceeded its configured step/state budget."""


class NotLinearizableError(ReproError):
    """A history failed the linearizability check.

    Carries the offending history so tests and tools can display a witness.
    """

    def __init__(self, message: str, history=None):
        super().__init__(message)
        self.history = history


class TaskViolationError(ReproError):
    """A protocol's outputs violated its task specification (e.g. more than
    k distinct decisions in k-set consensus, or an invalid output value)."""


class ImplementabilityError(ReproError):
    """Requested an implementation construction whose parameters the
    implementability theorem proves impossible."""
