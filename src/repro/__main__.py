"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``describe N K``
    Print the data sheet of O(N, K): geometry, consensus number, task,
    separation witnesses, agreement profile.
``curves N [--kmax K] [--nmax NMAX]``
    Print the agreement curves K(N) for consensus number N and family
    levels 1..K — the repository's implicit figure.
``check N K``
    Model-check O(N, K)'s headline claims live (consensus, exhaustive or
    sampled set consensus) and print the verdict.
``explore [--task T] [--n N] [--k K] [--max-crashes F] [--checkpoint FILE]
[--resume FILE]``
    Drive the exhaustive explorer directly: enumerate every execution
    (optionally every crash timing with ``--max-crashes``), periodically
    checkpointing the DFS frontier.  An interrupted run (SIGINT, budget)
    flushes a final checkpoint and exits 3; ``--resume FILE`` continues
    it, visiting exactly the executions the interrupted run had not yet
    yielded.
``report``
    Run the full experiment suite and print the EXPERIMENTS.md tables
    (equivalent to ``python -m repro.experiments.report``).
``common2 [--levels L]``
    Print the Common2 refutation certificates.
``stats TRACE.jsonl [TRACE2.jsonl ...]``
    Replay archived JSONL event streams (produced with ``--trace-out``)
    and print the aggregated metrics digest: step counts per process/
    object/method, schedules explored, run verdicts, per-phase timings,
    and the span profile with replay-overhead accounting.  Corrupt lines
    (e.g. the truncated tail of a killed run) are skipped and counted.
    Export flags: ``--flame OUT.folded`` (collapsed stacks for
    flamegraph.pl/speedscope), ``--html OUT.html`` (self-contained run
    report), ``--metrics-out OUT.prom`` (Prometheus text exposition).
``bench-compare OLD.json NEW.json``
    Diff two BENCH_runtime.json files from the benchmark harness; exits
    nonzero when a bench regressed by more than ``--threshold``
    (default 20%).

Observability flags (every run command):

``--trace-out FILE.jsonl``
    Attach a JSONL event sink; the resulting file feeds ``stats``.
``--metrics-out FILE.prom``
    Write the run's metrics in Prometheus text exposition format.
``--progress``
    Rate-limited progress line on stderr for long checks.

Budget flags (every run command): ``--deadline SECONDS`` and
``--max-steps N`` install a process-wide :mod:`repro.faults.budget` —
any exploration the command triggers degrades to an INCONCLUSIVE verdict
(exit code 3 where applicable) instead of running forever.
"""

from __future__ import annotations

import argparse
import sys
from math import ceil

from repro.faults.budget import Budget, active_budget
from repro.faults.checkpoint import read_checkpoint
from repro.obs.bench import main as bench_compare_main
from repro.obs.events import JsonlReadStats, JsonlSink, read_jsonl, set_sink
from repro.obs.metrics import MetricsRegistry, get_registry, reset_registry
from repro.obs.profile import Profiler
from repro.obs.progress import ProgressReporter
from repro.obs.report import render_html
from repro.obs.spans import span

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import (
    consensus_spec,
    set_consensus_spec,
)
from repro.core.common2 import refutation_series
from repro.core.family import FamilyMember
from repro.core.power import family_agreement
from repro.tasks import (
    ConsensusTask,
    KSetConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


def cmd_describe(args) -> int:
    member = FamilyMember(args.n, args.k)
    print(member.describe())
    profile = member.profile()
    values = ", ".join(
        f"{c}->{profile(c)}" for c in range(1, member.ports + 1)
    )
    print(f"agreement profile (cohort -> decisions): {values}")
    print(
        f"separation vs O({args.n},{args.k + 1}): N = "
        f"{member.separation_system_size} (paper's ascending-chain "
        f"constant: {member.paper_separation_system_size})"
    )
    return 0


def cmd_curves(args) -> int:
    n = args.n
    print(f"Best agreement K(N), consensus number {n} (lower = stronger):")
    width = args.nmax
    print("  N            " + " ".join(f"{N:3d}" for N in range(1, width + 1)))
    consensus_curve = [ceil(N / n) for N in range(1, width + 1)]
    print(f"  {n}-consensus  " + " ".join(f"{v:3d}" for v in consensus_curve))
    for k in range(1, args.kmax + 1):
        curve = [family_agreement(n, k, N) for N in range(1, width + 1)]
        print(f"  O({n},{k})       " + " ".join(f"{v:3d}" for v in curve))
    return 0


def cmd_check(args) -> int:
    member = FamilyMember(args.n, args.k)
    inputs = [f"v{i}" for i in range(member.n)]
    report = check_task_all_schedules(
        consensus_spec(args.n, args.k, inputs),
        ConsensusTask(),
        inputs_dict(inputs),
    )
    print(
        f"[1/2] consensus, {member.n} processes, all schedules: "
        f"{'OK' if report.ok else 'FAILED: ' + report.reason} "
        f"({report.executions_checked} executions)"
    )
    inputs = [f"v{i}" for i in range(member.ports)]
    spec = set_consensus_spec(args.n, args.k, inputs)
    task = KSetConsensusTask(args.k + 1)
    if member.ports <= 6:
        full = check_task_all_schedules(spec, task, inputs_dict(inputs))
        mode = f"all {full.executions_checked} schedules"
    else:
        full = check_task_random_schedules(
            spec, task, inputs_dict(inputs), seeds=range(300)
        )
        mode = "300 random schedules"
    print(
        f"[2/2] ({member.ports}, {args.k + 1})-set consensus, {mode}: "
        f"{'OK' if full.ok else 'FAILED: ' + full.reason}"
    )
    return 0 if report.ok and full.ok else 1


#: Spec builders the explore command (and its checkpoints) can name.
EXPLORE_TASKS = {
    "set-consensus": lambda n, k: set_consensus_spec(
        n, k, [f"v{i}" for i in range(FamilyMember(n, k).ports)]
    ),
    "consensus": lambda n, k: consensus_spec(
        n, k, [f"v{i}" for i in range(n)]
    ),
}


def cmd_explore(args) -> int:
    from repro.errors import ProtocolError
    from repro.runtime.explorer import Explorer

    if args.resume:
        try:
            checkpoint = read_checkpoint(args.resume)
        except (OSError, ProtocolError) as error:
            print(f"explore: cannot resume: {error}", file=sys.stderr)
            return 2
        if checkpoint.done:
            print(
                f"explore: {args.resume} is complete "
                f"({checkpoint.executions} executions) — nothing to resume"
            )
            return 0
        # CLI flags override nothing that identifies the spec: the
        # checkpoint's own provenance wins, so a bare --resume works.
        task = checkpoint.spec.get("task", args.task)
        n = int(checkpoint.spec.get("n", args.n))
        k = int(checkpoint.spec.get("k", args.k))
        spec = EXPLORE_TASKS[task](n, k)
        explorer = Explorer.from_checkpoint(
            spec,
            checkpoint,
            strict=False,
            checkpoint_path=args.checkpoint or args.resume,
            checkpoint_every=args.checkpoint_every,
        )
        print(
            f"resuming {task} O({n},{k}) from {args.resume}: "
            f"{len(checkpoint.frontier)} pending prefixes, "
            f"{checkpoint.executions} executions already done"
        )
    else:
        task, n, k = args.task, args.n, args.k
        spec = EXPLORE_TASKS[task](n, k)
        explorer = Explorer(
            spec,
            max_depth=args.max_depth,
            strict=False,
            max_crashes=args.max_crashes,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
    explorer.set_spec_meta(task=task, n=n, k=k)
    try:
        for _execution in explorer.executions():
            pass
    except KeyboardInterrupt:
        if explorer.checkpoint_path is not None:
            path = explorer.write_checkpoint()
            print(
                f"\ninterrupted — checkpoint written to {path} "
                f"({explorer.total_executions} executions so far); "
                f"resume with: repro explore --resume {path}"
            )
        else:
            print("\ninterrupted (no --checkpoint configured; progress lost)")
        return 3
    stats = explorer.stats
    print(
        f"{explorer.total_executions} executions "
        f"({stats.executions} this run), max depth {stats.max_depth_seen}, "
        f"{stats.steps_on_path} on-path + {stats.steps_replayed} replayed "
        f"steps, {stats.faults_injected} faults injected"
    )
    if explorer.interrupted is not None:
        where = (
            f"; checkpoint at {explorer.checkpoint_path}"
            if explorer.checkpoint_path
            else ""
        )
        print(f"INCONCLUSIVE: {explorer.interrupted}{where}")
        return 3
    if explorer.checkpoint_path is not None:
        print(f"complete — checkpoint {explorer.checkpoint_path} marks done")
    return 0


def cmd_report(_args) -> int:
    from repro.experiments.report import main as report_main

    return report_main(["--check"])


def cmd_common2(args) -> int:
    for cert in refutation_series(args.levels):
        print(cert.statement())
    return 0


def cmd_stats(args) -> int:
    registry = MetricsRegistry()
    profiler = Profiler()
    read_stats = JsonlReadStats()
    for trace in args.traces:
        try:
            for name, fields in read_jsonl(trace, stats=read_stats):
                registry.consume_event(name, fields)
                profiler.consume_event(name, fields)
        except OSError as error:
            print(f"stats: cannot read {trace}: {error}", file=sys.stderr)
            return 1
    if read_stats.events == 0:
        print(
            f"stats: no events found in {', '.join(args.traces)}"
            + (f" ({read_stats.skipped} corrupt lines skipped)"
               if read_stats.skipped else ""),
            file=sys.stderr,
        )
        return 1
    header = f"# {', '.join(args.traces)}: {read_stats.events} events"
    if read_stats.skipped:
        header += f" ({read_stats.skipped} corrupt lines skipped)"
    print(header + "\n")
    print(registry.digest())
    if profiler.spans_seen:
        print("\nspan profile:")
        print(profiler.render_tree())
    try:
        if args.flame:
            with open(args.flame, "w", encoding="utf-8") as handle:
                handle.write("\n".join(profiler.folded_stacks()) + "\n")
            print(f"\nwrote collapsed stacks to {args.flame}")
        if args.html:
            with open(args.html, "w", encoding="utf-8") as handle:
                handle.write(
                    render_html(
                        registry,
                        profiler,
                        sources=args.traces,
                        events=read_stats.events,
                        skipped=read_stats.skipped,
                    )
                )
            print(f"wrote HTML report to {args.html}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(registry.render_prometheus())
            print(f"wrote Prometheus metrics to {args.metrics_out}")
    except OSError as error:
        print(f"stats: cannot write output: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_bench_compare(args) -> int:
    argv = [args.old, args.new, "--threshold", str(args.threshold),
            "--min-seconds", str(args.min_seconds)]
    return bench_compare_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic objects beyond the consensus hierarchy",
    )
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        default=None,
        help="write a structured JSONL event stream (read it back with "
        "'python -m repro stats FILE.jsonl')",
    )
    obs.add_argument(
        "--metrics-out",
        metavar="FILE.prom",
        default=None,
        help="write the run's metrics in Prometheus text exposition format",
    )
    obs.add_argument(
        "--progress",
        action="store_true",
        help="rate-limited progress reporting on stderr",
    )
    obs.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock budget for the whole command; explorations it "
        "does not cover degrade to INCONCLUSIVE instead of running",
    )
    obs.add_argument(
        "--max-steps",
        type=int,
        metavar="N",
        default=None,
        help="total simulator-step budget for the whole command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser(
        "describe", help="data sheet of O(n, k)", parents=[obs]
    )
    describe.add_argument("n", type=int)
    describe.add_argument("k", type=int)
    describe.set_defaults(func=cmd_describe)

    curves = sub.add_parser(
        "curves", help="agreement curves K(N)", parents=[obs]
    )
    curves.add_argument("n", type=int)
    curves.add_argument("--kmax", type=int, default=3)
    curves.add_argument("--nmax", type=int, default=24)
    curves.set_defaults(func=cmd_curves)

    check = sub.add_parser(
        "check", help="model-check O(n, k) live", parents=[obs]
    )
    check.add_argument("n", type=int)
    check.add_argument("k", type=int)
    check.set_defaults(func=cmd_check)

    explore = sub.add_parser(
        "explore",
        help="enumerate executions (and crash timings) with checkpointing",
        parents=[obs],
    )
    explore.add_argument(
        "--task", choices=sorted(EXPLORE_TASKS), default="set-consensus"
    )
    explore.add_argument("--n", type=int, default=2)
    explore.add_argument("--k", type=int, default=1)
    explore.add_argument("--max-depth", type=int, default=60)
    explore.add_argument(
        "--max-crashes", type=int, default=0,
        help="also branch on crashing up to F processes at every point",
    )
    explore.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="periodically write the DFS frontier here (atomic)",
    )
    explore.add_argument(
        "--checkpoint-every", type=int, default=1000, metavar="N",
        help="checkpoint every N executions (default 1000)",
    )
    explore.add_argument(
        "--resume", metavar="FILE", default=None,
        help="resume from a checkpoint file (spec identity comes from "
        "the checkpoint; updated checkpoints go back to the same file "
        "unless --checkpoint overrides)",
    )
    explore.set_defaults(func=cmd_explore)

    report = sub.add_parser(
        "report", help="run the experiment suite", parents=[obs]
    )
    report.set_defaults(func=cmd_report)

    common2 = sub.add_parser(
        "common2", help="Common2 refutation certificates", parents=[obs]
    )
    common2.add_argument("--levels", type=int, default=3)
    common2.set_defaults(func=cmd_common2)

    stats = sub.add_parser(
        "stats", help="summarize JSONL event streams from --trace-out"
    )
    stats.add_argument(
        "traces", nargs="+", metavar="TRACE",
        help="one or more .jsonl files (aggregated into a single digest)",
    )
    stats.add_argument(
        "--flame", metavar="OUT.folded", default=None,
        help="write collapsed stacks (flamegraph.pl / speedscope format)",
    )
    stats.add_argument(
        "--html", metavar="OUT.html", default=None,
        help="write a self-contained HTML run report",
    )
    stats.add_argument(
        "--metrics-out", metavar="OUT.prom", default=None,
        help="write the replayed metrics in Prometheus text format",
    )
    stats.set_defaults(func=cmd_stats, handles_obs_flags=True)

    bench_compare = sub.add_parser(
        "bench-compare",
        help="compare two BENCH_runtime.json files; exit 1 on regression",
    )
    bench_compare.add_argument("old", help="baseline BENCH_runtime.json")
    bench_compare.add_argument("new", help="candidate BENCH_runtime.json")
    bench_compare.add_argument("--threshold", type=float, default=0.20)
    bench_compare.add_argument("--min-seconds", type=float, default=0.01)
    bench_compare.set_defaults(func=cmd_bench_compare, handles_obs_flags=True)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    sink = None
    reporter = None
    collecting = False
    trace_out = getattr(args, "trace_out", None)
    # stats/bench-compare manage their own registries and output files;
    # the generic wiring below is for live run commands only.
    metrics_out = (
        None if getattr(args, "handles_obs_flags", False)
        else getattr(args, "metrics_out", None)
    )
    if trace_out or metrics_out:
        reset_registry()  # the collected metrics should describe this run only
        collecting = True
    if trace_out:
        try:
            sink = JsonlSink(trace_out)
        except OSError as error:
            print(f"repro: cannot open --trace-out {trace_out}: {error}",
                  file=sys.stderr)
            return 2
        set_sink(sink)
    if collecting:
        get_registry().install()
    if getattr(args, "progress", False):
        reporter = ProgressReporter().install()
    budget = None
    if getattr(args, "deadline", None) is not None or getattr(
        args, "max_steps", None
    ) is not None:
        budget = Budget(deadline=args.deadline, max_steps=args.max_steps)
    try:
        with active_budget(budget), span("command", command=args.command):
            return args.func(args)
    finally:
        if reporter is not None:
            reporter.close()
        if collecting:
            get_registry().uninstall()
        if sink is not None:
            set_sink(None)
            sink.close()
        if metrics_out:
            try:
                with open(metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(get_registry().render_prometheus())
            except OSError as error:
                print(f"repro: cannot write --metrics-out {metrics_out}: {error}",
                      file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
