"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``describe N K``
    Print the data sheet of O(N, K): geometry, consensus number, task,
    separation witnesses, agreement profile.
``curves N [--kmax K] [--nmax NMAX]``
    Print the agreement curves K(N) for consensus number N and family
    levels 1..K — the repository's implicit figure.
``check N K``
    Model-check O(N, K)'s headline claims live (consensus, exhaustive or
    sampled set consensus) and print the verdict.
``explore [--task T] [--n N] [--k K] [--max-crashes F] [--max-recoveries R]
[--checkpoint FILE] [--resume FILE] [--execset-out FILE] [--no-execset]
[--selfcheck]``
    Drive the exhaustive explorer directly: enumerate every execution
    (optionally every crash timing with ``--max-crashes``, and every
    crash-recovery timing with ``--max-recoveries``), periodically
    checkpointing the DFS frontier.  An interrupted run (SIGINT, budget)
    flushes a final checkpoint and exits 3; ``--resume FILE`` continues
    it, visiting exactly the executions the interrupted run had not yet
    yielded.  By default every run also records its execution *set* as a
    content-addressed ``repro-execset/1`` digest stream (default path
    ``.repro/execsets/<run-id>.jsonl``, override with ``--execset-out``,
    disable with ``--no-execset``) — the artifact ``repro diff``
    compares.  ``--selfcheck`` runs the exploration twice (fresh, and
    interrupted-then-resumed from a mid-run checkpoint) and verifies
    set-equality of the two digests, exit 1 on any difference.
``diff A B [--json] [--html OUT.html] [--ledger FILE]``
    Compare two explorations as *sets of executions*: operands are
    ``repro-execset/1`` file paths or ledger run ids (unique prefixes
    accepted; a run id pulls in its whole resume chain, merged).
    Reports set-digest equality, the set difference with example
    executions, verdicts, per-depth visit histograms, audit summaries,
    and wall-clock/throughput; a set difference is explained by
    replaying a minimal missing execution into an ``obs/explain`` lane
    diagram pinpointing the first diverging decision.  Exit 0 same
    set + same verdict, 1 same verdict but different set (legitimate
    for sound reductions), 2 verdict divergence, 3 usage.  Output is
    deterministic: two invocations over the same targets are
    byte-identical (stdout and ``--html``).
``audit [--task T] [--n N] [--k K] [--max-crashes F] [--html OUT.html]``
    Exhaustively explore an instance with the state-space redundancy
    profiler attached and print the reduction-headroom table: revisit
    ratio (state caching), commuting adjacent-pair fraction (DPOR), and
    pid-orbit savings (symmetry).  Output is deterministic — two runs
    over the same instance are byte-identical on stdout (informational
    messages go to stderr).  See docs/OBSERVABILITY.md, "State-space
    audit".
``report``
    Run the full experiment suite and print the EXPERIMENTS.md tables
    (equivalent to ``python -m repro.experiments.report``).
``common2 [--levels L]``
    Print the Common2 refutation certificates.
``stats TRACE.jsonl [TRACE2.jsonl ...]``
    Replay archived JSONL event streams (produced with ``--trace-out``)
    and print the aggregated metrics digest: step counts per process/
    object/method, schedules explored, run verdicts, per-phase timings,
    and the span profile with replay-overhead accounting.  Corrupt lines
    (e.g. the truncated tail of a killed run) are skipped and counted.
    Export flags: ``--flame OUT.folded`` (collapsed stacks for
    flamegraph.pl/speedscope), ``--html OUT.html`` (self-contained run
    report), ``--metrics-out OUT.prom`` (Prometheus text exposition).
``bench-compare [OLD.json] NEW.json``
    Diff two BENCH_runtime.json files from the benchmark harness; exits
    nonzero when a bench regressed by more than ``--threshold``
    (default 20%).  With one file, the committed
    ``benchmarks/BENCH_baseline.json`` is the implicit baseline.
    ``--record-history [FILE]`` appends the candidate's summary to the
    committed ``benchmarks/BENCH_history.jsonl`` trajectory (label it
    with ``--history-label SHA``); ``--history [FILE]`` prints the
    per-bench trend.
``runs list|show|compare``
    Inspect the persistent run ledger (``.repro/runs.jsonl``): every run
    command appends one record (run id, argv, verdict, duration, budget
    trips, checkpoint, artifact, and witness paths).  ``list --json``
    emits the records as a JSON array and ``--verdict PROVED`` filters
    (also REFUTED/INCONCLUSIVE/ERROR), so scripts never screen-scrape
    the table.  ``show RUN_ID`` prints one record in full, ``compare A
    B`` diffs verdicts/timings between two runs (abbreviated run ids
    accepted; exit 1 when verdicts disagree).
``serve [--port P] [--host H] [--max-workers N] [--max-retries N]
[--data-dir DIR]``
    The standing multi-run verdict service: accepts exploration jobs
    over HTTP (``POST /jobs``), runs each in a supervised subprocess
    worker with tracing/witnesses/checkpointing enabled, resumes crashed
    workers from their last checkpoint, and serves job status, SSE event
    streams, aggregated metrics, the ledger, witness lane views, and an
    HTML dashboard.  SIGINT/SIGTERM drain gracefully (running jobs
    checkpoint and become resumable).  See docs/SERVICE.md.
``explain WITNESS.jsonl | RUN_ID``
    Replay an archived witness bundle (or the witnesses recorded by a
    ledger run), ddmin-shrink it to a 1-minimal schedule that still
    satisfies its predicate, and print the space-time lane diagram plus
    a step-by-step narrative.  ``--no-shrink`` skips minimization,
    ``--html OUT.html`` also writes the lane view as a page.  Output is
    deterministic: two invocations over the same bundle are
    byte-identical.  See docs/EXPLAIN.md.

Observability flags (every run command):

``--trace-out FILE.jsonl``
    Attach a JSONL event sink; the resulting file feeds ``stats``.
``--metrics-out FILE.prom``
    Write the run's metrics in Prometheus text exposition format.
``--progress``
    Rate-limited progress line on stderr for long checks.
``--serve [PORT]``
    Start a live telemetry HTTP server (127.0.0.1, ephemeral port when
    omitted) exposing ``/status`` (JSON run snapshot with coverage/ETA),
    ``/metrics`` (live Prometheus exposition), and ``/events?n=``
    (recent event tail).  See docs/OBSERVABILITY.md, "Live monitoring".
``--ledger FILE`` / ``--no-ledger``
    Override or disable the run-ledger record for this invocation
    (default ``.repro/runs.jsonl``, or ``$REPRO_LEDGER``).
``--witness-dir [DIR]``
    Archive every deciding execution (refuting counterexamples,
    existence witnesses) as a replayable JSONL bundle under DIR
    (default ``.repro/witnesses``); bundle paths land in suite rows,
    ``/status``, the run ledger, and the HTML report, and feed
    ``repro explain``.  Off unless given.

Budget flags (every run command): ``--deadline SECONDS`` and
``--max-steps N`` install a process-wide :mod:`repro.faults.budget` —
any exploration the command triggers degrades to an INCONCLUSIVE verdict
(exit code 3 where applicable) instead of running forever.
"""

from __future__ import annotations

import argparse
import sys
import threading
from math import ceil

from repro.faults.budget import Budget, active_budget
from repro.faults.checkpoint import read_checkpoint
from repro.fsutil import ensure_parent
from repro.obs import ledger as run_ledger
from repro.obs.bench import DEFAULT_HISTORY as bench_default_history
from repro.obs.bench import main as bench_compare_main
from repro.obs.events import JsonlReadStats, JsonlSink, read_jsonl, set_sink
from repro.obs.live import serve as serve_live
from repro.obs.metrics import MetricsRegistry, get_registry, reset_registry
from repro.obs.profile import Profiler
from repro.obs.progress import ProgressReporter
from repro.obs.report import render_html
from repro.obs.spans import span

from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import (
    consensus_spec,
    set_consensus_spec,
)
from repro.core.common2 import refutation_series
from repro.core.family import FamilyMember
from repro.core.power import family_agreement
from repro.tasks import (
    ConsensusTask,
    KSetConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


def cmd_describe(args) -> int:
    member = FamilyMember(args.n, args.k)
    print(member.describe())
    profile = member.profile()
    values = ", ".join(
        f"{c}->{profile(c)}" for c in range(1, member.ports + 1)
    )
    print(f"agreement profile (cohort -> decisions): {values}")
    print(
        f"separation vs O({args.n},{args.k + 1}): N = "
        f"{member.separation_system_size} (paper's ascending-chain "
        f"constant: {member.paper_separation_system_size})"
    )
    return 0


def cmd_curves(args) -> int:
    n = args.n
    print(f"Best agreement K(N), consensus number {n} (lower = stronger):")
    width = args.nmax
    print("  N            " + " ".join(f"{N:3d}" for N in range(1, width + 1)))
    consensus_curve = [ceil(N / n) for N in range(1, width + 1)]
    print(f"  {n}-consensus  " + " ".join(f"{v:3d}" for v in consensus_curve))
    for k in range(1, args.kmax + 1):
        curve = [family_agreement(n, k, N) for N in range(1, width + 1)]
        print(f"  O({n},{k})       " + " ".join(f"{v:3d}" for v in curve))
    return 0


def cmd_check(args) -> int:
    member = FamilyMember(args.n, args.k)
    inputs = [f"v{i}" for i in range(member.n)]
    report = check_task_all_schedules(
        consensus_spec(args.n, args.k, inputs),
        ConsensusTask(),
        inputs_dict(inputs),
    )
    print(
        f"[1/2] consensus, {member.n} processes, all schedules: "
        f"{'OK' if report.ok else 'FAILED: ' + report.reason} "
        f"({report.executions_checked} executions)"
    )
    inputs = [f"v{i}" for i in range(member.ports)]
    spec = set_consensus_spec(args.n, args.k, inputs)
    task = KSetConsensusTask(args.k + 1)
    if member.ports <= 6:
        full = check_task_all_schedules(spec, task, inputs_dict(inputs))
        mode = f"all {full.executions_checked} schedules"
    else:
        full = check_task_random_schedules(
            spec, task, inputs_dict(inputs), seeds=range(300)
        )
        mode = "300 random schedules"
    print(
        f"[2/2] ({member.ports}, {args.k + 1})-set consensus, {mode}: "
        f"{'OK' if full.ok else 'FAILED: ' + full.reason}"
    )
    return 0 if report.ok and full.ok else 1


#: Spec builders the explore command (and its checkpoints) can name.
EXPLORE_TASKS = {
    "set-consensus": lambda n, k: set_consensus_spec(
        n, k, [f"v{i}" for i in range(FamilyMember(n, k).ports)]
    ),
    "consensus": lambda n, k: consensus_spec(
        n, k, [f"v{i}" for i in range(n)]
    ),
}


def _explore_execset_recorder(args, task, n, k, inputs, checkpoint=None):
    """Build the explore command's execution-set recorder (default-on).

    The stream lands at ``--execset-out`` or
    ``.repro/execsets/<run-id>.jsonl``; a resumed run seeds its rolling
    digest from the checkpoint header's digest-so-far (legacy headers
    carry none — the digest then covers only the new records and
    ``repro diff`` reports the merged claim as partial).
    """
    import os

    from repro.obs.execset import ExecutionSetRecorder, default_dir

    if args.no_execset:
        return None
    recorder = run_ledger.current_run()
    run_tag = (
        recorder.run_id if recorder is not None else run_ledger.new_run_id()
    )
    path = args.execset_out or os.path.join(default_dir(), f"{run_tag}.jsonl")
    base = checkpoint.execset if checkpoint is not None else None
    return ExecutionSetRecorder(
        path=path,
        spec_meta={"task": task, "n": n, "k": k},
        value_alphabet=inputs,
        base_digest=(base or {}).get("digest"),
        base_records=(base or {}).get("records", 0),
    )


def _write_execset(execset) -> None:
    """Flush the digest stream (also annotates the run ledger); a write
    failure must not turn a finished exploration into an error."""
    if execset is None:
        return
    try:
        path = execset.write()
    except (OSError, ValueError) as error:
        print(f"explore: cannot write execset stream: {error}",
              file=sys.stderr)
        return
    from repro.obs.execset import short_digest

    print(
        f"execution-set digest {short_digest(execset.merged_digest)} "
        f"over {execset.total_records} executions -> {path}"
    )


def cmd_explore(args) -> int:
    from repro.errors import ProtocolError
    from repro.runtime.explorer import Explorer

    if args.selfcheck:
        if args.resume:
            print(
                "explore: --selfcheck runs its own interrupt/resume cycle "
                "and cannot be combined with --resume",
                file=sys.stderr,
            )
            return 2
        return _explore_selfcheck(args)
    if args.resume:
        try:
            checkpoint = read_checkpoint(args.resume)
        except (OSError, ProtocolError) as error:
            print(f"explore: cannot resume: {error}", file=sys.stderr)
            return 2
        if checkpoint.done:
            print(
                f"explore: {args.resume} is complete "
                f"({checkpoint.executions} executions) — nothing to resume"
            )
            return 0
        # Resume chain: the checkpoint names the run that wrote it, so
        # the ledger links this record back to its parent.
        run_ledger.annotate(
            parent_run_id=checkpoint.run_id, resumed_from=args.resume
        )
        # CLI flags override nothing that identifies the spec: the
        # checkpoint's own provenance wins, so a bare --resume works.
        task = checkpoint.spec.get("task", args.task)
        n = int(checkpoint.spec.get("n", args.n))
        k = int(checkpoint.spec.get("k", args.k))
        spec, inputs = _audit_spec(task, n, k)
        execset = _explore_execset_recorder(
            args, task, n, k, inputs, checkpoint=checkpoint
        )
        explorer = Explorer.from_checkpoint(
            spec,
            checkpoint,
            strict=False,
            checkpoint_path=args.checkpoint or args.resume,
            checkpoint_every=args.checkpoint_every,
            execset=execset,
        )
        print(
            f"resuming {task} O({n},{k}) from {args.resume}: "
            f"{len(checkpoint.frontier)} pending prefixes, "
            f"{checkpoint.executions} executions already done"
        )
    else:
        task, n, k = args.task, args.n, args.k
        spec, inputs = _audit_spec(task, n, k)
        execset = _explore_execset_recorder(args, task, n, k, inputs)
        explorer = Explorer(
            spec,
            max_depth=args.max_depth,
            strict=False,
            max_crashes=args.max_crashes,
            max_recoveries=args.max_recoveries,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            execset=execset,
        )
    explorer.set_spec_meta(task=task, n=n, k=k)
    recorder = run_ledger.current_run()
    if recorder is not None:
        explorer.run_id = recorder.run_id
    run_ledger.annotate(
        describe=(
            f"exhaustive(task={task}, n={n}, k={k}, "
            f"max_crashes={explorer.max_crashes}, "
            f"max_recoveries={explorer.max_recoveries})"
        ),
        checkpoint=explorer.checkpoint_path,
    )
    try:
        # A span of its own (under the root "command" span) so a stitched
        # job trace separates exploration proper from CLI setup/teardown.
        with span("explore", task=task, n=n, k=k):
            for _execution in explorer.executions():
                pass
    except KeyboardInterrupt:
        run_ledger.annotate(
            interrupted="SIGINT", executions=explorer.total_executions
        )
        if explorer.checkpoint_path is not None:
            path = explorer.write_checkpoint()
            print(
                f"\ninterrupted — checkpoint written to {path} "
                f"({explorer.total_executions} executions so far); "
                f"resume with: repro explore --resume {path}"
            )
        else:
            print("\ninterrupted (no --checkpoint configured; progress lost)")
        # The partial set is still a valid shard: its digest folds into
        # the resumed run's through the checkpoint header.
        _write_execset(execset)
        return 3
    stats = explorer.stats
    run_ledger.annotate(
        executions=explorer.total_executions,
        steps=stats.steps_total,
        faults_injected=stats.faults_injected,
        recoveries=stats.recoveries_injected,
        interrupted=explorer.interrupted,
    )
    _write_execset(execset)
    print(
        f"{explorer.total_executions} executions "
        f"({stats.executions} this run), max depth {stats.max_depth_seen}, "
        f"{stats.steps_on_path} on-path + {stats.steps_replayed} replayed "
        f"steps, {stats.faults_injected} faults injected, "
        f"{stats.recoveries_injected} recoveries"
    )
    if explorer.interrupted is not None:
        where = (
            f"; checkpoint at {explorer.checkpoint_path}"
            if explorer.checkpoint_path
            else ""
        )
        print(f"INCONCLUSIVE: {explorer.interrupted}{where}")
        return 3
    if explorer.checkpoint_path is not None:
        print(f"complete — checkpoint {explorer.checkpoint_path} marks done")
    return 0


def _explore_selfcheck(args) -> int:
    """``repro explore --selfcheck``: fresh vs interrupted-and-resumed.

    Runs the exploration once to completion, then a second time that is
    cut off halfway, checkpointed, and resumed — and verifies the two
    visited exactly the same *set* of executions (digest equality plus
    an explicit id-set comparison, upgrading the old count-equality
    resume guarantee).  Exit 0 on SET-EQUAL, 1 on any difference.
    """
    import os
    import tempfile

    from repro.obs.execset import ExecutionSetRecorder, short_digest
    from repro.runtime.explorer import Explorer

    task, n, k = args.task, args.n, args.k
    spec, inputs = _audit_spec(task, n, k)
    spec_meta = {"task": task, "n": n, "k": k}

    def build(recorder, **kwargs):
        return Explorer(
            spec,
            max_depth=args.max_depth,
            strict=False,
            max_crashes=args.max_crashes,
            max_recoveries=args.max_recoveries,
            execset=recorder,
            **kwargs,
        )

    run_ledger.annotate(
        describe=(
            f"selfcheck(task={task}, n={n}, k={k}, "
            f"max_crashes={args.max_crashes}, "
            f"max_recoveries={args.max_recoveries})"
        )
    )
    with span("explore-selfcheck", task=task, n=n, k=k):
        # Pass 1: the reference run, straight through.
        fresh = ExecutionSetRecorder(
            spec_meta=spec_meta, value_alphabet=inputs
        )
        reference = build(fresh)
        for _execution in reference.executions():
            pass
        total = reference.stats.executions
        print(f"selfcheck: exploration has {total} executions")

        # Pass 2a: same exploration, interrupted halfway...
        first = ExecutionSetRecorder(
            spec_meta=spec_meta, value_alphabet=inputs
        )
        interrupted = build(first)
        cutoff = max(1, total // 2)
        iterator = interrupted.executions()
        count = 0
        for _execution in iterator:
            count += 1
            if count >= cutoff:
                break
        iterator.close()
        descriptor, checkpoint_path = tempfile.mkstemp(
            prefix="repro-selfcheck-", suffix=".ckpt"
        )
        os.close(descriptor)
        try:
            interrupted.write_checkpoint(checkpoint_path)
            checkpoint = read_checkpoint(checkpoint_path)
            # ...pass 2b: resumed from the checkpoint, digest seeded
            # from its header — exactly the production resume path.
            second = ExecutionSetRecorder(
                spec_meta=spec_meta,
                value_alphabet=inputs,
                base_digest=(checkpoint.execset or {}).get("digest"),
                base_records=(checkpoint.execset or {}).get("records", 0),
            )
            resumed = Explorer.from_checkpoint(
                spec, checkpoint, strict=False, execset=second
            )
            for _execution in resumed.executions():
                pass
        finally:
            try:
                os.unlink(checkpoint_path)
            except OSError:
                pass

    fresh_ids = {record["id"] for record in fresh.records}
    resumed_ids = {record["id"] for record in first.records} | {
        record["id"] for record in second.records
    }
    print(
        f"selfcheck: fresh digest   {short_digest(fresh.digest)} "
        f"({len(fresh_ids)} executions)"
    )
    print(
        f"selfcheck: resumed digest {short_digest(second.merged_digest)} "
        f"({len(first.records)} before interrupt + "
        f"{len(second.records)} after resume)"
    )
    digests_equal = fresh.digest == second.merged_digest
    sets_equal = fresh_ids == resumed_ids
    run_ledger.annotate(
        executions=total,
        selfcheck="set-equal" if (digests_equal and sets_equal) else "set-differs",
        execset={"digest": fresh.digest, "records": len(fresh_ids)},
    )
    if digests_equal and sets_equal:
        print(
            "selfcheck: SET-EQUAL — the resumed run visited exactly the "
            "executions the fresh run did"
        )
        return 0
    for label, ids in (
        ("fresh only", sorted(fresh_ids - resumed_ids)),
        ("resumed only", sorted(resumed_ids - fresh_ids)),
    ):
        if ids:
            shown = ", ".join(ids[:5]) + (", ..." if len(ids) > 5 else "")
            print(f"selfcheck: {label}: {len(ids)} execution(s): {shown}")
    if digests_equal and not sets_equal:
        print("selfcheck: digests collide but id sets differ — corrupt records?")
    print("selfcheck: SET-DIFFERS — resume is not visiting the same executions")
    return 1


def cmd_diff(args) -> int:
    from repro.obs import diff as obs_diff

    try:
        report = obs_diff.diff_targets(
            args.target_a,
            args.target_b,
            ledger_path=args.ledger,
            explain=not args.no_explain,
        )
    except (ValueError, OSError) as error:
        print(f"diff: {error}", file=sys.stderr)
        return obs_diff.EXIT_USAGE
    if args.html is not None:
        try:
            with open(ensure_parent(args.html), "w", encoding="utf-8") as handle:
                handle.write(obs_diff.render_html(report))
        except OSError as error:
            print(f"diff: cannot write {args.html}: {error}", file=sys.stderr)
            return obs_diff.EXIT_USAGE
    if args.json:
        print(obs_diff.render_json_report(report))
    else:
        print(obs_diff.render_table(report))
    return int(report["exit_code"])


def _audit_spec(task: str, n: int, k: int):
    """Build the spec for an audit run alongside its input alphabet.

    :data:`EXPLORE_TASKS` hides the inputs inside a closure; the orbit
    estimator needs them as the value alphabet for canonicalization.
    """
    if task == "consensus":
        inputs = [f"v{i}" for i in range(n)]
        return consensus_spec(n, k, inputs), inputs
    inputs = [f"v{i}" for i in range(FamilyMember(n, k).ports)]
    return set_consensus_spec(n, k, inputs), inputs


def cmd_audit(args) -> int:
    from repro.obs.audit import ledger_summary, render_table, run_audit
    from repro.obs.report import render_audit_html

    spec, inputs = _audit_spec(args.task, args.n, args.k)
    run_ledger.annotate(
        describe=(
            f"audit(task={args.task}, n={args.n}, k={args.k}, "
            f"max_crashes={args.max_crashes}, "
            f"max_recoveries={args.max_recoveries})"
        )
    )
    auditor, explorer = run_audit(
        spec,
        max_depth=args.max_depth,
        max_crashes=args.max_crashes,
        max_recoveries=args.max_recoveries,
        value_alphabet=inputs,
        max_pairs=args.max_pairs,
        pair_stride=args.pair_stride,
    )
    auditor.emit_summary()
    label = f"{args.task} O({args.n},{args.k})"
    if args.max_crashes:
        label += f", max_crashes={args.max_crashes}"
    if args.max_recoveries:
        label += f", max_recoveries={args.max_recoveries}"
    # stdout carries only the deterministic table: CI byte-compares two
    # invocations, so anything run-specific goes to stderr.
    print(render_table(auditor, label=label))
    run_ledger.annotate(
        executions=explorer.total_executions,
        audit=ledger_summary(auditor),
        interrupted=explorer.interrupted,
    )
    if args.html is not None:
        try:
            with open(ensure_parent(args.html), "w", encoding="utf-8") as handle:
                handle.write(
                    render_audit_html(
                        auditor, title=f"repro state-space audit — {label}"
                    )
                )
        except OSError as error:
            print(f"audit: cannot write {args.html}: {error}", file=sys.stderr)
            return 2
        print(f"wrote HTML audit report to {args.html}", file=sys.stderr)
        recorder = run_ledger.current_run()
        artifacts = {}
        if recorder is not None and isinstance(
            recorder.record.get("artifacts"), dict
        ):
            artifacts.update(recorder.record["artifacts"])
        artifacts["audit_html"] = args.html
        run_ledger.annotate(artifacts=artifacts)
    if explorer.interrupted is not None:
        print(
            f"INCONCLUSIVE: {explorer.interrupted} — headroom numbers "
            "cover the explored portion only",
            file=sys.stderr,
        )
        return 3
    return 0


def cmd_report(_args) -> int:
    from repro.experiments.report import main as report_main

    return report_main(["--check"])


def cmd_common2(args) -> int:
    for cert in refutation_series(args.levels):
        print(cert.statement())
    return 0


def cmd_stats(args) -> int:
    registry = MetricsRegistry()
    profiler = Profiler()
    read_stats = JsonlReadStats()
    witnesses = []
    for trace in args.traces:
        try:
            for name, fields in read_jsonl(trace, stats=read_stats):
                registry.consume_event(name, fields)
                profiler.consume_event(name, fields)
                if name == "witness_captured":
                    witnesses.append(dict(fields))
        except OSError as error:
            print(f"stats: cannot read {trace}: {error}", file=sys.stderr)
            return 1
    if read_stats.events == 0:
        print(
            f"stats: no events found in {', '.join(args.traces)}"
            + (f" ({read_stats.skipped} corrupt lines skipped)"
               if read_stats.skipped else ""),
            file=sys.stderr,
        )
        # Every single line corrupt is an error (exit 2), not merely an
        # empty trace (exit 1): the caller handed us data we could not use.
        return 2 if read_stats.skipped else 1
    header = f"# {', '.join(args.traces)}: {read_stats.events} events"
    if read_stats.skipped:
        header += f" ({read_stats.skipped} corrupt lines skipped)"
    print(header + "\n")
    print(registry.digest())
    if profiler.spans_seen:
        print("\nspan profile:")
        print(profiler.render_tree())
    try:
        if args.flame:
            with open(ensure_parent(args.flame), "w", encoding="utf-8") as handle:
                handle.write("\n".join(profiler.folded_stacks()) + "\n")
            print(f"\nwrote collapsed stacks to {args.flame}")
        if args.html:
            with open(ensure_parent(args.html), "w", encoding="utf-8") as handle:
                handle.write(
                    render_html(
                        registry,
                        profiler,
                        sources=args.traces,
                        events=read_stats.events,
                        skipped=read_stats.skipped,
                        witnesses=witnesses,
                    )
                )
            print(f"wrote HTML report to {args.html}")
        if args.metrics_out:
            with open(
                ensure_parent(args.metrics_out), "w", encoding="utf-8"
            ) as handle:
                handle.write(registry.render_prometheus())
            print(f"wrote Prometheus metrics to {args.metrics_out}")
    except OSError as error:
        print(f"stats: cannot write output: {error}", file=sys.stderr)
        return 2
    artifacts = {
        name: path
        for name, path in (
            ("flame", args.flame),
            ("html", args.html),
            ("metrics_out", args.metrics_out),
        )
        if path
    }
    run_ledger.annotate(
        artifacts=artifacts or None,
        events=read_stats.events,
        corrupt_lines=read_stats.skipped or None,
    )
    return 0


def cmd_bench_compare(args) -> int:
    argv = [args.old]
    if args.new is not None:
        argv.append(args.new)
    argv += ["--threshold", str(args.threshold),
             "--min-seconds", str(args.min_seconds)]
    if args.history is not None:
        argv += ["--history", args.history]
    if args.record_history is not None:
        argv += ["--record-history", args.record_history]
    if args.history_label:
        argv += ["--history-label", args.history_label]
    return bench_compare_main(argv)


def _ledger_records(args):
    path = args.ledger or run_ledger.default_ledger_path()
    records, skipped = run_ledger.read_ledger(path)
    if skipped:
        print(f"runs: {skipped} unreadable line(s) in {path} skipped",
              file=sys.stderr)
    return path, records


def cmd_runs_list(args) -> int:
    path, records = _ledger_records(args)
    if args.verdict is not None:
        try:
            records = run_ledger.filter_by_verdict(records, args.verdict)
        except ValueError as error:
            print(f"runs list: {error}", file=sys.stderr)
            return 2
    if args.json:
        print(run_ledger.render_json(records, limit=args.limit))
        return 0
    if not records:
        print(f"no runs recorded in {path}")
        return 0
    print(run_ledger.render_list(records, limit=args.limit))
    return 0


def cmd_runs_show(args) -> int:
    _path, records = _ledger_records(args)
    try:
        record = run_ledger.find_record(records, args.run_id)
    except ValueError as error:
        print(f"runs show: {error}", file=sys.stderr)
        return 2
    print(run_ledger.render_show(record))
    return 0


def cmd_explain(args) -> int:
    from repro.obs.explain import run_explain

    return run_explain(
        args.target,
        shrink=not args.no_shrink,
        html_out=args.html,
        ledger_path=args.ledger,
    )


def cmd_trace_show(args) -> int:
    from repro.obs.trace_view import run_trace_show

    return run_trace_show(
        args.target,
        html_out=args.html,
        jsonl_out=args.jsonl,
        as_json=args.json,
        ledger_path=args.ledger,
    )


def cmd_serve(args) -> int:
    """The ``repro serve`` daemon: run until SIGINT/SIGTERM, then drain.

    Lazy import keeps daemon-only machinery out of every other command's
    startup path.
    """
    import signal as _signal

    from repro.obs.service import serve_service

    try:
        session = serve_service(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            max_workers=args.max_workers,
            max_retries=args.max_retries,
        )
    except OSError as error:
        print(f"repro serve: cannot start: {error}", file=sys.stderr)
        return 2
    stop = threading.Event()

    def _request_stop(_signum, _frame) -> None:
        stop.set()

    previous = {
        sig: _signal.signal(sig, _request_stop)
        for sig in (_signal.SIGINT, _signal.SIGTERM)
    }
    print(f"repro serve: dashboard at {session.url('/')}", file=sys.stderr)
    print(
        f"repro serve: data dir {session.manager.data_dir} "
        f"({args.max_workers} worker(s), {args.max_retries} retries per job)",
        file=sys.stderr,
    )
    try:
        stop.wait()
        print(
            "repro serve: draining (running jobs checkpoint and stop; "
            "resume them by resubmitting)",
            file=sys.stderr,
        )
    finally:
        for sig, handler in previous.items():
            _signal.signal(sig, handler)
        session.close()
    return 0


def cmd_runs_compare(args) -> int:
    _path, records = _ledger_records(args)
    try:
        first = run_ledger.find_record(records, args.run_a)
        second = run_ledger.find_record(records, args.run_b)
    except ValueError as error:
        print(f"runs compare: {error}", file=sys.stderr)
        return 2
    lines, verdicts_agree = run_ledger.compare_runs(first, second)
    for line in lines:
        print(line)
    return 0 if verdicts_agree else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic objects beyond the consensus hierarchy",
    )
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        default=None,
        help="write a structured JSONL event stream (read it back with "
        "'python -m repro stats FILE.jsonl')",
    )
    obs.add_argument(
        "--metrics-out",
        metavar="FILE.prom",
        default=None,
        help="write the run's metrics in Prometheus text exposition format",
    )
    obs.add_argument(
        "--progress",
        action="store_true",
        help="rate-limited progress reporting on stderr",
    )
    obs.add_argument(
        "--serve",
        nargs="?",
        const=0,
        type=int,
        default=None,
        metavar="PORT",
        help="serve live telemetry over HTTP on 127.0.0.1 (/status, "
        "/metrics, /events); with no PORT an ephemeral port is chosen "
        "and printed on stderr",
    )
    obs.add_argument(
        "--ledger",
        metavar="FILE",
        default=None,
        help="append this run's record to FILE instead of the default "
        "ledger (.repro/runs.jsonl or $REPRO_LEDGER)",
    )
    obs.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this run in the ledger",
    )
    obs.add_argument(
        "--witness-dir",
        nargs="?",
        const=".repro/witnesses",
        default=None,
        metavar="DIR",
        help="archive every deciding execution as a replayable witness "
        "bundle under DIR (default .repro/witnesses when the flag is "
        "given with no value); inspect bundles with 'repro explain'",
    )
    obs.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock budget for the whole command; explorations it "
        "does not cover degrade to INCONCLUSIVE instead of running",
    )
    obs.add_argument(
        "--max-steps",
        type=int,
        metavar="N",
        default=None,
        help="total simulator-step budget for the whole command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser(
        "describe", help="data sheet of O(n, k)", parents=[obs]
    )
    describe.add_argument("n", type=int)
    describe.add_argument("k", type=int)
    describe.set_defaults(func=cmd_describe)

    curves = sub.add_parser(
        "curves", help="agreement curves K(N)", parents=[obs]
    )
    curves.add_argument("n", type=int)
    curves.add_argument("--kmax", type=int, default=3)
    curves.add_argument("--nmax", type=int, default=24)
    curves.set_defaults(func=cmd_curves)

    check = sub.add_parser(
        "check", help="model-check O(n, k) live", parents=[obs]
    )
    check.add_argument("n", type=int)
    check.add_argument("k", type=int)
    check.set_defaults(func=cmd_check)

    explore = sub.add_parser(
        "explore",
        help="enumerate executions (and crash timings) with checkpointing",
        parents=[obs],
    )
    explore.add_argument(
        "--task", choices=sorted(EXPLORE_TASKS), default="set-consensus"
    )
    explore.add_argument("--n", type=int, default=2)
    explore.add_argument("--k", type=int, default=1)
    explore.add_argument("--max-depth", type=int, default=60)
    explore.add_argument(
        "--max-crashes", type=int, default=0,
        help="also branch on crashing up to F processes at every point",
    )
    explore.add_argument(
        "--max-recoveries", type=int, default=0,
        help="also branch on reviving up to R crashed processes with "
        "amnesia (crash-recovery adversary)",
    )
    explore.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="periodically write the DFS frontier here (atomic)",
    )
    explore.add_argument(
        "--checkpoint-every", type=int, default=1000, metavar="N",
        help="checkpoint every N executions (default 1000)",
    )
    explore.add_argument(
        "--resume", metavar="FILE", default=None,
        help="resume from a checkpoint file (spec identity comes from "
        "the checkpoint; updated checkpoints go back to the same file "
        "unless --checkpoint overrides)",
    )
    explore.add_argument(
        "--execset-out", metavar="FILE.jsonl", default=None,
        help="write the execution-set digest stream here (default "
        ".repro/execsets/<run-id>.jsonl; compare streams with "
        "'repro diff')",
    )
    explore.add_argument(
        "--no-execset", action="store_true",
        help="do not record the execution-set digest stream",
    )
    explore.add_argument(
        "--selfcheck", action="store_true",
        help="run the exploration twice — fresh, and interrupted-then-"
        "resumed from a mid-run checkpoint — and verify both visited "
        "exactly the same execution set (exit 1 on any difference)",
    )
    explore.set_defaults(func=cmd_explore)

    audit = sub.add_parser(
        "audit",
        help="measure state-space redundancy: cache / DPOR / symmetry "
        "headroom for one instance",
        parents=[obs],
    )
    audit.add_argument(
        "--task", choices=sorted(EXPLORE_TASKS), default="set-consensus"
    )
    audit.add_argument("--n", type=int, default=2)
    audit.add_argument("--k", type=int, default=1)
    audit.add_argument("--max-depth", type=int, default=60)
    audit.add_argument(
        "--max-crashes", type=int, default=0,
        help="also branch on crashing up to F processes at every point",
    )
    audit.add_argument(
        "--max-recoveries", type=int, default=0,
        help="also branch on reviving up to R crashed processes with "
        "amnesia (crash-recovery adversary)",
    )
    audit.add_argument(
        "--max-pairs", type=int, default=256, metavar="N",
        help="cap on adjacent decision pairs classified (each costs two "
        "replays; default 256)",
    )
    audit.add_argument(
        "--pair-stride", type=int, default=1, metavar="S",
        help="classify every S-th candidate pair (deterministic "
        "sampling; default 1 = all)",
    )
    audit.add_argument(
        "--html", metavar="OUT.html", default=None,
        help="also write a self-contained HTML audit report",
    )
    audit.set_defaults(func=cmd_audit)

    report = sub.add_parser(
        "report", help="run the experiment suite", parents=[obs]
    )
    report.set_defaults(func=cmd_report)

    common2 = sub.add_parser(
        "common2", help="Common2 refutation certificates", parents=[obs]
    )
    common2.add_argument("--levels", type=int, default=3)
    common2.set_defaults(func=cmd_common2)

    stats = sub.add_parser(
        "stats", help="summarize JSONL event streams from --trace-out"
    )
    stats.add_argument(
        "traces", nargs="+", metavar="TRACE",
        help="one or more .jsonl files (aggregated into a single digest)",
    )
    stats.add_argument(
        "--flame", metavar="OUT.folded", default=None,
        help="write collapsed stacks (flamegraph.pl / speedscope format)",
    )
    stats.add_argument(
        "--html", metavar="OUT.html", default=None,
        help="write a self-contained HTML run report",
    )
    stats.add_argument(
        "--metrics-out", metavar="OUT.prom", default=None,
        help="write the replayed metrics in Prometheus text format",
    )
    stats.set_defaults(func=cmd_stats, handles_obs_flags=True)

    bench_compare = sub.add_parser(
        "bench-compare",
        help="compare two BENCH_runtime.json files; exit 1 on regression",
    )
    bench_compare.add_argument(
        "old",
        help="baseline BENCH_runtime.json (with a single argument, the "
        "candidate — compared against the committed baseline)",
    )
    bench_compare.add_argument(
        "new", nargs="?", default=None,
        help="candidate BENCH_runtime.json (omit to compare OLD against "
        "benchmarks/BENCH_baseline.json)",
    )
    bench_compare.add_argument("--threshold", type=float, default=0.20)
    bench_compare.add_argument("--min-seconds", type=float, default=0.01)
    bench_compare.add_argument(
        "--history", nargs="?", const=bench_default_history, default=None,
        metavar="FILE",
        help="print the per-bench trend from BENCH_history.jsonl",
    )
    bench_compare.add_argument(
        "--record-history", nargs="?", const=bench_default_history,
        default=None, metavar="FILE",
        help="append the candidate run's summary to the trajectory "
        "(label with --history-label)",
    )
    bench_compare.add_argument(
        "--history-label", default="",
        help="label for the recorded entry (typically a commit sha)",
    )
    bench_compare.set_defaults(func=cmd_bench_compare, handles_obs_flags=True)

    explain = sub.add_parser(
        "explain",
        help="shrink and narrate an archived witness bundle (or a ledger "
        "run's witnesses)",
    )
    explain.add_argument(
        "target", metavar="WITNESS.jsonl|RUN_ID",
        help="a witness bundle path, or a ledger run id whose record "
        "lists witnesses (unique prefix accepted)",
    )
    explain.add_argument(
        "--no-shrink", action="store_true",
        help="render the witness as archived without ddmin minimization",
    )
    explain.add_argument(
        "--html", metavar="OUT.html", default=None,
        help="also write the lane view(s) as a self-contained HTML page",
    )
    explain.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="resolve RUN_ID against this ledger file instead of the "
        "default",
    )
    explain.set_defaults(
        func=cmd_explain, handles_obs_flags=True, skip_ledger_record=True
    )

    diff = sub.add_parser(
        "diff",
        help="compare two runs as sets of executions (digest, set "
        "difference, verdicts); exit 0 same set, 1 different set, "
        "2 verdict divergence",
    )
    diff.add_argument(
        "target_a", metavar="A",
        help="a repro-execset/1 file, or a ledger run id (unique prefix "
        "accepted; its whole resume chain is merged)",
    )
    diff.add_argument(
        "target_b", metavar="B",
        help="the run to compare against (same forms as A)",
    )
    diff.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of the table",
    )
    diff.add_argument(
        "--html", metavar="OUT.html", default=None,
        help="also write the report (with the divergence lane view) as "
        "a self-contained HTML page",
    )
    diff.add_argument(
        "--no-explain", action="store_true",
        help="skip replaying a missing execution for the divergence "
        "lane exhibit",
    )
    diff.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="resolve run-id operands against this ledger instead of "
        "the default",
    )
    diff.set_defaults(
        func=cmd_diff, handles_obs_flags=True, skip_ledger_record=True
    )

    runs = sub.add_parser(
        "runs", help="inspect the persistent run ledger"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_show = runs_sub.add_parser("show", help="print one run record")
    runs_show.add_argument("run_id", help="run id (unique prefix accepted)")
    runs_compare = runs_sub.add_parser(
        "compare", help="diff two runs; exit 1 when verdicts disagree"
    )
    runs_compare.add_argument("run_a")
    runs_compare.add_argument("run_b")
    runs_list.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show at most the N most recent runs (default 20)",
    )
    runs_list.add_argument(
        "--json", action="store_true",
        help="emit the records as a JSON array instead of the table "
        "(every key, machine-readable)",
    )
    runs_list.add_argument(
        "--verdict", metavar="VERDICT", default=None,
        help="only runs with this verdict "
        "(PROVED, REFUTED, INCONCLUSIVE, or ERROR; case-insensitive)",
    )
    for runs_parser, handler in (
        (runs_list, cmd_runs_list),
        (runs_show, cmd_runs_show),
        (runs_compare, cmd_runs_compare),
    ):
        runs_parser.add_argument(
            "--ledger", metavar="FILE", default=None,
            help="read this ledger file instead of the default",
        )
        runs_parser.set_defaults(
            func=handler, handles_obs_flags=True, skip_ledger_record=True
        )

    trace = sub.add_parser(
        "trace", help="inspect stitched causal traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_sub.add_parser(
        "show",
        help="stitch a job's daemon + worker traces (or a ledger run's "
        "resume chain) and print the critical-path waterfall",
    )
    trace_show.add_argument(
        "target",
        help="a service job directory (containing trace-daemon.jsonl / "
        "trace-N.jsonl), a single trace file, or a ledger run id "
        "(unique prefix accepted; its whole resume chain is stitched)",
    )
    trace_show.add_argument(
        "--html", metavar="FILE", default=None,
        help="also write the waterfall as a standalone HTML page",
    )
    trace_show.add_argument(
        "--jsonl", metavar="FILE", default=None,
        help="also write the stitched tree as flat JSONL "
        "(repro-stitched-trace/1)",
    )
    trace_show.add_argument(
        "--json", action="store_true",
        help="print the stitched tree as JSON instead of the ASCII "
        "waterfall",
    )
    trace_show.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="resolve run-id targets against this ledger instead of the "
        "default",
    )
    trace_show.set_defaults(
        func=cmd_trace_show, handles_obs_flags=True, skip_ledger_record=True
    )

    serve = sub.add_parser(
        "serve",
        help="standing multi-run verdict service (job queue over HTTP, "
        "crash-resuming workers, dashboard)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="listen port (default: ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="listen address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--max-workers", type=int, default=2, metavar="N",
        help="exploration jobs run concurrently (default 2)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="crash-resume attempts per job before ERROR (default 2)",
    )
    serve.add_argument(
        "--data-dir", default=".repro/service", metavar="DIR",
        help="root for job dirs, the service ledger, and witness bundles "
        "(default .repro/service)",
    )
    serve.set_defaults(
        func=cmd_serve, handles_obs_flags=True, skip_ledger_record=True
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    sink = None
    reporter = None
    live = None
    witness_store = None
    collecting = False
    trace_out = getattr(args, "trace_out", None)
    serve_port = getattr(args, "serve", None)
    # stats/bench-compare manage their own registries and output files;
    # the generic wiring below is for live run commands only.
    metrics_out = (
        None if getattr(args, "handles_obs_flags", False)
        else getattr(args, "metrics_out", None)
    )
    if trace_out or metrics_out or serve_port is not None:
        reset_registry()  # the collected metrics should describe this run only
        collecting = True
    if trace_out:
        try:
            sink = JsonlSink(trace_out)
        except OSError as error:
            print(f"repro: cannot open --trace-out {trace_out}: {error}",
                  file=sys.stderr)
            return 2
        set_sink(sink)
    if collecting:
        get_registry().install()
    if getattr(args, "progress", False):
        reporter = ProgressReporter().install()
    witness_dir = getattr(args, "witness_dir", None)
    if witness_dir is not None:
        from repro.obs import witness as obs_witness

        witness_store = obs_witness.WitnessStore(witness_dir)
        obs_witness.activate_store(witness_store)
    budget = None
    if getattr(args, "deadline", None) is not None or getattr(
        args, "max_steps", None
    ) is not None:
        budget = Budget(deadline=args.deadline, max_steps=args.max_steps)
    recording = not (
        getattr(args, "skip_ledger_record", False)
        or getattr(args, "no_ledger", False)
    )
    full_argv = list(sys.argv[1:]) if argv is None else list(argv)
    if recording:
        run_ledger.begin_run(
            path=getattr(args, "ledger", None) or run_ledger.default_ledger_path(),
            command=args.command,
            argv=full_argv,
        )
        artifacts = {
            name: path
            for name, path in (
                ("trace_out", trace_out),
                ("metrics_out", metrics_out),
            )
            if path
        }
        run_ledger.annotate(
            artifacts=artifacts or None,
            budget=budget.describe() if budget is not None else None,
        )
    if serve_port is not None:
        try:
            live = serve_live(
                command=args.command,
                argv=full_argv,
                run_id=(
                    run_ledger.current_run().run_id
                    if run_ledger.current_run() is not None
                    else None
                ),
                port=serve_port,
            )
        except OSError as error:
            print(f"repro: cannot start --serve server: {error}",
                  file=sys.stderr)
            run_ledger.abandon_run()
            return 2
        print(f"live telemetry: {live.url('/status')}", file=sys.stderr)
    code: int = 2
    try:
        with active_budget(budget), span("command", command=args.command):
            code = args.func(args)
        return code
    finally:
        if live is not None:
            live.close()
        if witness_store is not None:
            from repro.obs import witness as obs_witness

            obs_witness.deactivate_store()
            if witness_store.captured:
                print(
                    f"{len(witness_store.captured)} witness bundle(s) in "
                    f"{witness_dir} — inspect with: repro explain <bundle>",
                    file=sys.stderr,
                )
        if reporter is not None:
            reporter.close()
        if collecting:
            registry = get_registry()
            registry.uninstall()
            if recording:
                trips = registry.sum_by_label("budget_exhausted_total", "kind")
                if trips:
                    run_ledger.annotate(
                        budget_trips={
                            str(kind): count for kind, count in sorted(trips.items())
                        }
                    )
        if sink is not None:
            set_sink(None)
            sink.close()
        if metrics_out:
            try:
                with open(
                    ensure_parent(metrics_out), "w", encoding="utf-8"
                ) as handle:
                    handle.write(get_registry().render_prometheus())
            except OSError as error:
                print(f"repro: cannot write --metrics-out {metrics_out}: {error}",
                      file=sys.stderr)
        if recording:
            try:
                run_ledger.finish_run(code)
            except OSError as error:
                print(f"repro: cannot write run ledger: {error}",
                      file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
