"""Schedulers — the adversary that picks which process steps next.

All schedulers implement two decisions:

* :meth:`Scheduler.next_pid` — which enabled process takes the next step;
* :meth:`Scheduler.choose` — which outcome a nondeterministic object takes.

The wait-free model quantifies over *all* schedulers; the randomized and
scripted schedulers here sample and replay that space, and the exhaustive
explorer (:mod:`repro.runtime.explorer`) enumerates it for small systems.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE


class Scheduler:
    """Base class; subclasses override :meth:`next_pid` and optionally
    :meth:`choose`."""

    def next_pid(self, system) -> Optional[int]:
        """Return the pid to step next, or ``None`` to stop the run early.

        ``system`` is the live :class:`~repro.runtime.system.System`; the
        chosen pid must be in ``system.enabled_pids()``.
        """
        raise NotImplementedError

    def choose(self, system, pid: int, n_outcomes: int) -> int:
        """Select an outcome index for a nondeterministic step (default: 0,
        i.e. the spec's first-listed outcome)."""
        return 0

    def describe(self) -> str:
        """Short provenance string: class name plus the seed, when the
        scheduler has one.  Recorded in archived traces (see
        :mod:`repro.runtime.trace_io`) so counterexamples remember how
        they were produced."""
        seed = getattr(self, "seed", None)
        if seed is not None:
            return f"{type(self).__name__}(seed={seed})"
        return type(self).__name__


class RoundRobinScheduler(Scheduler):
    """Fair scheduler: cycles over processes, skipping dead ones."""

    def __init__(self, start: int = 0):
        self._next = start

    def next_pid(self, system) -> Optional[int]:
        enabled = set(system.enabled_pids())
        if not enabled:
            return None
        n = len(system.processes)
        for offset in range(n):
            pid = (self._next + offset) % n
            if pid in enabled:
                self._next = (pid + 1) % n
                return pid
        return None


class RandomScheduler(Scheduler):
    """Uniformly random adversary, reproducible from a seed.

    Also randomizes nondeterministic-object outcomes, so repeated runs with
    different seeds sample both schedule and object nondeterminism.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def next_pid(self, system) -> Optional[int]:
        enabled = system.enabled_pids()
        if not enabled:
            return None
        return self._rng.choice(enabled)

    def choose(self, system, pid: int, n_outcomes: int) -> int:
        return self._rng.randrange(n_outcomes)


class ScriptedScheduler(Scheduler):
    """Replays a fixed decision sequence.

    ``decisions`` may be a sequence of pids, or of ``(pid, choice)`` pairs
    as produced by :attr:`~repro.runtime.execution.Execution.decisions` /
    :attr:`~repro.runtime.execution.Execution.full_decisions` — entries
    whose choice is :data:`~repro.runtime.execution.CRASH_CHOICE` crash
    the pid instead of stepping it, and
    :data:`~repro.runtime.execution.RECOVER_CHOICE` entries revive it
    with amnesia, so faulty runs replay exactly.
    When the script is exhausted the run stops (useful for driving a system
    into a specific intermediate configuration).
    """

    def __init__(self, decisions: Iterable):
        self._script: List[Tuple[int, int]] = []
        for item in decisions:
            if isinstance(item, tuple):
                pid, choice = item
                self._script.append((pid, choice))
            else:
                self._script.append((int(item), 0))
        self._cursor = 0
        self._pending_choice = 0

    def describe(self) -> str:
        return f"{type(self).__name__}(len={len(self._script)})"

    def next_pid(self, system) -> Optional[int]:
        while self._cursor < len(self._script):
            pid, choice = self._script[self._cursor]
            self._cursor += 1
            if choice == CRASH_CHOICE:
                system.crash(pid)
                continue
            if choice == RECOVER_CHOICE:
                system.recover(pid)
                continue
            self._pending_choice = choice
            return pid
        return None

    def choose(self, system, pid: int, n_outcomes: int) -> int:
        if not 0 <= self._pending_choice < n_outcomes:
            raise SchedulingError(
                f"scripted choice {self._pending_choice} invalid for "
                f"{n_outcomes} outcomes"
            )
        return self._pending_choice


class PriorityScheduler(Scheduler):
    """Always steps the highest-priority enabled process.

    ``priority`` maps pid to a number; larger runs first.  With distinct
    priorities this is the "solo in order" adversary: process A runs to
    completion, then B, and so on — the schedule that defeats naive
    agreement protocols and maximizes decision diversity.
    """

    def __init__(self, priority: Dict[int, float]):
        self.priority = dict(priority)

    def next_pid(self, system) -> Optional[int]:
        enabled = system.enabled_pids()
        if not enabled:
            return None
        return max(enabled, key=lambda pid: (self.priority.get(pid, 0.0), -pid))


class SoloScheduler(PriorityScheduler):
    """Runs processes solo, one after another, in the given pid order."""

    def __init__(self, order: Sequence[int]):
        super().__init__({pid: len(order) - i for i, pid in enumerate(order)})


class CrashingScheduler(Scheduler):
    """Wraps another scheduler and crashes processes at given step counts.

    ``crash_at`` maps pid to the global step index at which the process is
    crash-stopped (before that step is taken).  The map is never mutated
    and the step count is read off the live system, so one instance can
    drive any number of fresh systems — replays and repeated explorations
    see identical crash behaviour (the base scheduler's own state, e.g. a
    round-robin cursor or an RNG stream, is still the caller's to manage).
    """

    def __init__(self, base: Scheduler, crash_at: Dict[int, int]):
        self.base = base
        self.crash_at = dict(crash_at)

    def describe(self) -> str:
        crashes = ", ".join(
            f"p{pid}@{when}" for pid, when in sorted(self.crash_at.items())
        )
        return f"{type(self).__name__}({{{crashes}}}, base={self.base.describe()})"

    def next_pid(self, system) -> Optional[int]:
        steps = len(system.trace.steps)
        for pid, when in self.crash_at.items():
            if steps >= when and system.processes[pid].is_live:
                system.crash(pid)
        return self.base.next_pid(system)

    def choose(self, system, pid: int, n_outcomes: int) -> int:
        return self.base.choose(system, pid, n_outcomes)


class FunctionScheduler(Scheduler):
    """Adapter turning ``f(system) -> pid`` into a scheduler."""

    def __init__(self, fn: Callable, chooser: Optional[Callable] = None):
        self._fn = fn
        self._chooser = chooser

    def next_pid(self, system) -> Optional[int]:
        return self._fn(system)

    def choose(self, system, pid: int, n_outcomes: int) -> int:
        if self._chooser is None:
            return 0
        return self._chooser(system, pid, n_outcomes)
