"""Step and annotation vocabulary yielded by process programs.

A program is a generator.  It interacts with the world by yielding:

* :class:`Operation` — one atomic step on a named shared object.  The
  runtime applies the operation and sends the response back into the
  generator.
* :class:`Annotation` — a zero-time marker (it does **not** consume a
  scheduling step).  Annotations are how implementations of higher-level
  objects mark the logical invocation/response boundaries that the
  linearizability checker consumes; they are also handy for tracing.

Returning from the generator ends the process; the returned value is the
process output (its task decision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


@dataclass(frozen=True)
class Operation:
    """One atomic step: apply ``method(*args)`` to the object named ``target``.

    Parameters
    ----------
    target:
        The name under which the object is registered in the
        :class:`~repro.runtime.system.SystemSpec`.
    method:
        Operation name understood by the object's spec (e.g. ``"read"``,
        ``"write"``, ``"propose"``, ``"invoke"``).
    args:
        Positional arguments, stored as a tuple so records are hashable.
    """

    target: str
    method: str
    args: Tuple[Any, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.target}.{self.method}({rendered})"


def invoke(target: str, method: str, *args: Any) -> Operation:
    """Convenience constructor: ``yield invoke("r", "write", 3)``."""
    return Operation(target, method, tuple(args))


@dataclass(frozen=True)
class Annotation:
    """Zero-time event recorded in the execution trace.

    Well-known kinds (interpreted by :mod:`repro.runtime.history`):

    * ``"call"`` — logical operation invocation; ``payload`` is
      ``(object_name, method, args)``.
    * ``"return"`` — logical operation response; ``payload`` is the response.
    * anything else — free-form trace marker.
    """

    kind: str
    payload: Any = field(default=None)


def call_marker(obj: str, method: str, *args: Any) -> Annotation:
    """Annotation marking the start of a logical (implemented) operation."""
    return Annotation("call", (obj, method, tuple(args)))


def return_marker(response: Any) -> Annotation:
    """Annotation marking the completion of the current logical operation."""
    return Annotation("return", response)
