"""Execution traces: the record of one run of a system.

An execution is an alternating sequence of configurations and steps.  We do
not store whole configurations (they are reproducible by replay); we store
the sequence of :class:`StepRecord` decisions plus everything downstream
consumers need: per-process outputs and statuses, annotations, and step
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.ops import Annotation, Operation
from repro.runtime.process import ProcessStatus

#: Sentinel ``choice`` marking a crash decision in decision sequences:
#: ``(pid, CRASH_CHOICE)`` means "crash-stop ``pid`` now" instead of
#: "step ``pid``".  Used by the explorer's crash-branching mode, by
#: :meth:`~repro.runtime.system.SystemSpec.replay`, by
#: :class:`~repro.runtime.scheduler.ScriptedScheduler`, and in archived
#: trace files — a real outcome choice is never negative.
CRASH_CHOICE = -1

#: Sentinel ``choice`` marking a recovery decision: ``(pid,
#: RECOVER_CHOICE)`` revives a crashed ``pid`` with its private/program
#: state reset — shared objects are untouched (crash-recovery with
#: amnesia).  A sibling of :data:`CRASH_CHOICE` everywhere decision
#: sequences flow: replay, scripted scheduling, explorer branching, and
#: archived traces.
RECOVER_CHOICE = -2


def merge_fault_decisions(
    decisions: List[Tuple[int, int]],
    crashes: List[Tuple[int, int]],
    recoveries: List[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Interleave step decisions with ``(step_index, pid)`` crash and
    recovery records into one ``full_decisions``-shaped sequence.

    Fault events sharing a step index are ordered by *liveness*: emit the
    first pending crash whose pid is currently live, else the first
    pending recovery whose pid is currently crashed, until the index
    drains.  Cross-pid fault events at one index commute (they touch
    disjoint processes and no shared state), so this canonical order
    replays identically; same-pid chains (crash p, recover p, crash p
    between the same two steps) are sequenced correctly by the tracking,
    where a naive crashes-first merge would re-crash a dead process.

    Raises ``ValueError`` when the records are inconsistent — a recovery
    of a pid that is not crashed at that point, or a crash of a pid that
    never recovered from its previous crash.  Records produced by a real
    run never trip this; readers of untrusted files surface it as a
    format error.
    """
    merged: List[Tuple[int, int]] = []
    crashed: set = set()
    ci = ri = 0

    def drain(at) -> None:
        nonlocal ci, ri
        while True:
            if (
                ci < len(crashes)
                and crashes[ci][0] <= at
                and crashes[ci][1] not in crashed
            ):
                crashed.add(crashes[ci][1])
                merged.append((crashes[ci][1], CRASH_CHOICE))
                ci += 1
                continue
            if (
                ri < len(recoveries)
                and recoveries[ri][0] <= at
                and recoveries[ri][1] in crashed
            ):
                crashed.discard(recoveries[ri][1])
                merged.append((recoveries[ri][1], RECOVER_CHOICE))
                ri += 1
                continue
            break

    for index, (pid, choice) in enumerate(decisions):
        drain(index)
        merged.append((pid, choice))
    drain(float("inf"))
    if ri < len(recoveries):
        raise ValueError(
            f"recovery of pid {recoveries[ri][1]} at step "
            f"{recoveries[ri][0]} references a process that is not "
            "crashed at that point"
        )
    if ci < len(crashes):
        raise ValueError(
            f"crash of pid {crashes[ci][1]} at step {crashes[ci][0]} "
            "references a process that is already crashed at that point"
        )
    return merged


@dataclass(frozen=True)
class StepRecord:
    """One atomic step of an execution.

    Attributes
    ----------
    index:
        Position of the step in the execution (0-based).
    pid:
        The process that took the step.
    operation:
        The shared-memory operation performed.
    response:
        The value returned by the object.
    choice:
        Which outcome the adversary selected, for nondeterministic objects
        (0 for deterministic ones).
    n_outcomes:
        How many outcomes were available (1 for deterministic objects).
    """

    index: int
    pid: int
    operation: Operation
    response: Any
    choice: int = 0
    n_outcomes: int = 1

    def __str__(self) -> str:
        nd = f" [choice {self.choice}/{self.n_outcomes}]" if self.n_outcomes > 1 else ""
        return f"#{self.index} p{self.pid}: {self.operation} -> {self.response!r}{nd}"


@dataclass
class Execution:
    """The full record of one run.

    Attributes
    ----------
    steps:
        The step records in order.
    outputs:
        ``pid -> returned value`` for every process that finished.
    statuses:
        Final :class:`~repro.runtime.process.ProcessStatus` per pid.
    annotations:
        ``(step_index, pid, annotation)`` triples.  ``step_index`` is the
        number of steps that had completed when the annotation was emitted,
        so annotation order interleaves correctly with steps.
    crashes:
        ``(step_index, pid)`` pairs recording crash-stops, where
        ``step_index`` is the number of steps that had completed when the
        crash happened — crash timing is part of the execution record, so
        crashed runs replay exactly (see :attr:`full_decisions`).
    recoveries:
        ``(step_index, pid)`` pairs recording crash-recoveries, same
        timing convention as ``crashes``.  A recovered process restarts
        its program from scratch (amnesia); shared objects keep their
        state.
    """

    steps: List[StepRecord] = field(default_factory=list)
    outputs: Dict[int, Any] = field(default_factory=dict)
    statuses: Dict[int, ProcessStatus] = field(default_factory=dict)
    annotations: List[Tuple[int, int, Annotation]] = field(default_factory=list)
    crashes: List[Tuple[int, int]] = field(default_factory=list)
    recoveries: List[Tuple[int, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> List[int]:
        """The pid sequence of the execution (the adversary's choices)."""
        return [s.pid for s in self.steps]

    @property
    def decisions(self) -> List[Tuple[int, int]]:
        """The full decision sequence ``(pid, choice)`` driving the run;
        feeding it to a :class:`~repro.runtime.scheduler.ScriptedScheduler`
        replays the execution exactly."""
        return [(s.pid, s.choice) for s in self.steps]

    @property
    def full_decisions(self) -> List[Tuple[int, int]]:
        """Decisions *including* crash-stops and recoveries, in execution
        order: fault entries appear as ``(pid, CRASH_CHOICE)`` /
        ``(pid, RECOVER_CHOICE)`` at the position they happened.  Feeding
        this to :meth:`~repro.runtime.system.SystemSpec.replay` (or a
        :class:`~repro.runtime.scheduler.ScriptedScheduler`) reproduces
        the execution exactly, crashed statuses included."""
        return merge_fault_decisions(
            [(s.pid, s.choice) for s in self.steps],
            self.crashes,
            self.recoveries,
        )

    def crashed_pids(self) -> List[int]:
        """Pids that were crash-stopped, in crash order."""
        return [pid for _at, pid in self.crashes]

    def recovered_pids(self) -> List[int]:
        """Pids that were revived after a crash, in recovery order."""
        return [pid for _at, pid in self.recoveries]

    def steps_by(self, pid: int) -> List[StepRecord]:
        """All steps taken by one process."""
        return [s for s in self.steps if s.pid == pid]

    def operations_on(self, target: str) -> List[StepRecord]:
        """All steps applied to the named shared object."""
        return [s for s in self.steps if s.operation.target == target]

    def distinct_outputs(self) -> set:
        """Set of distinct values returned by finished processes."""
        return set(self.outputs.values())

    def finished_pids(self) -> List[int]:
        """Pids that completed their program."""
        return sorted(self.outputs)

    def all_done(self) -> bool:
        """True if every process ran to completion."""
        return all(s is ProcessStatus.DONE for s in self.statuses.values())

    def max_steps_per_process(self) -> int:
        """Worst-case step count over processes (wait-freedom metric)."""
        counts: Dict[int, int] = {}
        for step in self.steps:
            counts[step.pid] = counts.get(step.pid, 0) + 1
        return max(counts.values(), default=0)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line trace, truncated to ``limit`` steps."""
        shown = self.steps if limit is None else self.steps[:limit]
        lines = [str(s) for s in shown]
        if limit is not None and len(self.steps) > limit:
            lines.append(f"... ({len(self.steps) - limit} more steps)")
        for pid in sorted(self.statuses):
            status = self.statuses[pid].value
            out = f" -> {self.outputs[pid]!r}" if pid in self.outputs else ""
            lines.append(f"p{pid}: {status}{out}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)
