"""Execution-trace serialization.

Executions are replayable from their decision lists, so a trace file only
needs the decisions (plus enough metadata to sanity-check the target
system).  This module writes/reads a small JSON format, letting users
archive counterexamples from the explorer, ship failing schedules in bug
reports, and re-examine adversarial runs later::

    payload = trace_to_json(execution, label="common2 witness")
    ...
    execution = replay_trace(spec, json.loads(payload))

Responses and outputs are *not* serialized — they are recomputed by
replay, which both keeps files tiny and verifies that the system still
behaves identically (a mismatch raises, catching spec drift).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import ProtocolError
from repro.runtime.execution import Execution, merge_fault_decisions
from repro.runtime.system import SystemSpec

#: Format marker for forwards compatibility.  New *optional* keys (like
#: ``meta``) are added within this version — readers ignore unknown keys,
#: so older files load under newer code and vice versa.
FORMAT = "repro-trace/1"


def describe_scheduler(scheduler: Any) -> str:
    """Provenance string for a scheduler: its :meth:`describe` result when
    available, else the class name (plus a ``seed`` attribute if present)."""
    describe = getattr(scheduler, "describe", None)
    if callable(describe):
        return describe()
    seed = getattr(scheduler, "seed", None)
    if seed is not None:
        return f"{type(scheduler).__name__}(seed={seed})"
    return type(scheduler).__name__


def trace_to_dict(
    execution: Execution, label: str = "", scheduler: Any = None
) -> Dict[str, Any]:
    """The serializable form of an execution: its decisions + metadata.

    ``meta`` records *how* the trace was produced: a monotonic step count
    (deliberately no wall-clock timestamp, so identical runs produce
    byte-identical files) and, when ``scheduler`` is given, its
    description (class name + seed where available).

    Crash-stops are part of the record: the optional ``crashes`` key
    (present only when the run had crashes, so crash-free files are
    byte-identical to older ones) lists ``[step_index, pid]`` pairs, and
    replay re-applies them at the same points — the fingerprint covers
    the resulting CRASHED statuses, so a reader that ignored the key
    would fail loudly rather than silently resurrect dead processes.
    Crash-*recovery* runs additionally carry a ``recoveries`` key with
    the same ``[step_index, pid]`` shape (again present only when
    non-empty); replay revives those pids with amnesia at the recorded
    points, and the fingerprint covers the post-recovery outcome.
    """
    meta: Dict[str, Any] = {"monotonic_steps": len(execution.steps)}
    if scheduler is not None:
        meta["scheduler"] = describe_scheduler(scheduler)
    payload = {
        "format": FORMAT,
        "label": label,
        "n_processes": len(execution.statuses),
        "n_steps": len(execution.steps),
        "decisions": [[pid, choice] for pid, choice in execution.decisions],
        "fingerprint": _fingerprint(execution),
        "meta": meta,
    }
    if execution.crashes:
        payload["crashes"] = [[at, pid] for at, pid in execution.crashes]
    if execution.recoveries:
        payload["recoveries"] = [[at, pid] for at, pid in execution.recoveries]
    return payload


def trace_to_json(
    execution: Execution,
    label: str = "",
    indent: int = None,
    scheduler: Any = None,
) -> str:
    """JSON form of :func:`trace_to_dict`."""
    return json.dumps(
        trace_to_dict(execution, label=label, scheduler=scheduler), indent=indent
    )


def replay_trace(spec: SystemSpec, trace: Dict[str, Any]) -> Execution:
    """Rebuild the execution by replaying the trace against ``spec``.

    Verifies the format marker, the process count, and — after replay —
    the outcome fingerprint, so silent divergence between the archived
    run and the current code is impossible.  Fault records are checked
    for internal consistency before replay: a ``recoveries`` entry for a
    pid that is not crashed at that point (or a double crash) raises
    :class:`ProtocolError` rather than replaying garbage.  Optional keys
    (``meta`` and any future additions within ``repro-trace/1``) are
    ignored, so newer files remain readable by older code.
    """
    if trace.get("format") != FORMAT:
        raise ProtocolError(
            f"unsupported trace format {trace.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    if trace.get("n_processes") != spec.n_processes:
        raise ProtocolError(
            f"trace was recorded for {trace.get('n_processes')} processes, "
            f"the spec has {spec.n_processes}"
        )
    decisions = [(pid, choice) for pid, choice in trace["decisions"]]
    crashes = [(at, pid) for at, pid in trace.get("crashes", [])]
    recoveries = [(at, pid) for at, pid in trace.get("recoveries", [])]
    try:
        full = merge_fault_decisions(decisions, crashes, recoveries)
    except ValueError as error:
        raise ProtocolError(f"trace is internally inconsistent: {error}") from None
    execution = spec.replay(full).finalize()
    recorded = trace.get("fingerprint")
    if recorded is not None and recorded != _fingerprint(execution):
        raise ProtocolError(
            "replayed execution diverges from the recorded fingerprint — "
            "the system spec has changed since the trace was captured"
        )
    return execution


def load_trace_json(spec: SystemSpec, payload: str) -> Execution:
    """Parse JSON and replay (see :func:`replay_trace`)."""
    return replay_trace(spec, json.loads(payload))


def _fingerprint(execution: Execution) -> str:
    """Cheap structural digest of the outcome: statuses and outputs in
    pid order (repr-based, so any picklable output participates)."""
    parts = []
    for pid in sorted(execution.statuses):
        status = execution.statuses[pid].value
        output = repr(execution.outputs.get(pid, "<none>"))
        parts.append(f"{pid}:{status}:{output}")
    return "|".join(parts)
