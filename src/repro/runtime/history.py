"""Operation histories for linearizability analysis.

A *history* is the sequence of invocation/response events of the **logical**
operations of an implemented object (as opposed to the atomic base-object
steps the simulator executes natively).  Implementations mark these
boundaries with ``call`` / ``return`` annotations
(:func:`repro.runtime.ops.call_marker` / :func:`repro.runtime.ops.return_marker`);
:func:`history_from_execution` assembles them into :class:`History` objects
consumed by the Wing–Gong checker in :mod:`repro.analysis.linearizability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.runtime.execution import Execution


@dataclass(frozen=True)
class HistoryEvent:
    """One completed (or pending) logical operation.

    ``invoked_at`` / ``responded_at`` are logical times: the number of
    atomic steps that had completed when the boundary annotation was
    emitted.  An operation ``a`` *precedes* ``b`` (happens-before in the
    real-time order) iff ``a.responded_at <= b.invoked_at``.

    ``responded_at is None`` marks a pending operation (its process crashed
    or was still running when the trace ended).
    """

    pid: int
    obj: str
    method: str
    args: Tuple[Any, ...]
    response: Any
    invoked_at: int
    responded_at: Optional[int]

    @property
    def is_pending(self) -> bool:
        return self.responded_at is None

    def precedes(self, other: "HistoryEvent") -> bool:
        """Real-time order: self completed before other was invoked."""
        return self.responded_at is not None and self.responded_at <= other.invoked_at

    def __str__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        resp = "?" if self.is_pending else repr(self.response)
        return (
            f"p{self.pid} {self.obj}.{self.method}({args}) -> {resp} "
            f"[{self.invoked_at}, {self.responded_at}]"
        )


class History:
    """A collection of logical operations with their real-time order."""

    def __init__(self, events: List[HistoryEvent]):
        self.events = list(events)

    @property
    def complete(self) -> List[HistoryEvent]:
        """Operations that received a response."""
        return [e for e in self.events if not e.is_pending]

    @property
    def pending(self) -> List[HistoryEvent]:
        """Operations still in flight at the end of the trace."""
        return [e for e in self.events if e.is_pending]

    def for_object(self, obj: str) -> "History":
        """Sub-history restricted to one implemented object."""
        return History([e for e in self.events if e.obj == obj])

    def objects(self) -> List[str]:
        return sorted({e.obj for e in self.events})

    def is_sequential(self) -> bool:
        """True if no two operations overlap in real time."""
        done = sorted(self.complete, key=lambda e: e.invoked_at)
        for first, second in zip(done, done[1:]):
            if not first.precedes(second):
                return False
        return not self.pending

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self) -> str:
        return "\n".join(str(e) for e in sorted(self.events, key=lambda e: e.invoked_at))


def history_from_execution(execution: Execution) -> History:
    """Assemble the logical-operation history from a trace's annotations.

    Each process must alternate ``call`` and ``return`` annotations; a final
    unmatched ``call`` becomes a pending operation.  Annotations of other
    kinds are ignored.
    """
    open_calls: Dict[int, Tuple[int, Tuple[str, str, Tuple[Any, ...]]]] = {}
    events: List[HistoryEvent] = []
    for step_index, pid, annotation in execution.annotations:
        if annotation.kind == "call":
            if pid in open_calls:
                raise ProtocolError(
                    f"process {pid} emitted a nested 'call' annotation; "
                    "logical operations must not overlap within one process"
                )
            open_calls[pid] = (step_index, annotation.payload)
        elif annotation.kind == "return":
            if pid not in open_calls:
                raise ProtocolError(
                    f"process {pid} emitted 'return' without a matching 'call'"
                )
            invoked_at, (obj, method, args) = open_calls.pop(pid)
            events.append(
                HistoryEvent(
                    pid=pid,
                    obj=obj,
                    method=method,
                    args=args,
                    response=annotation.payload,
                    invoked_at=invoked_at,
                    responded_at=step_index,
                )
            )
    for pid, (invoked_at, (obj, method, args)) in open_calls.items():
        events.append(
            HistoryEvent(
                pid=pid,
                obj=obj,
                method=method,
                args=args,
                response=None,
                invoked_at=invoked_at,
                responded_at=None,
            )
        )
    events.sort(key=lambda e: (e.invoked_at, e.pid))
    return History(events)
