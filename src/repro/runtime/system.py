"""The system: processes plus shared objects, advanced step by step.

:class:`SystemSpec` is an immutable description (object specs + program
factories) from which any number of fresh :class:`System` instances can be
built — the unit of replay for schedulers, property tests, and the
exhaustive explorer.

Shared objects follow the state-machine protocol defined in
:mod:`repro.objects.base` (duck-typed here to keep the runtime free of
upward dependencies): ``initial_state()``, ``apply(state, method, args) ->
[(response, new_state), ...]`` and the ``hang_on_misuse`` flag.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    IllegalOperationError,
    ProtocolError,
    SchedulingError,
)
from repro.faults.budget import get_active_budget
from repro.obs import events as _obs_events
from repro.runtime.execution import (
    CRASH_CHOICE,
    RECOVER_CHOICE,
    Execution,
    StepRecord,
)
from repro.runtime.ops import Operation
from repro.runtime.process import Process, ProcessStatus, ProgramFactory


class SystemSpec:
    """Immutable recipe for a system.

    Parameters
    ----------
    objects:
        Mapping from object name to object spec (see
        :class:`repro.objects.base.ObjectSpec`).  Specs are stateless, so
        they are shared between builds; only *states* are per-system.
    programs:
        One zero-argument generator factory per process; process ``i`` runs
        ``programs[i]()``.
    """

    def __init__(self, objects: Mapping[str, Any], programs: Sequence[ProgramFactory]):
        self.objects: Dict[str, Any] = dict(objects)
        self.programs: List[ProgramFactory] = list(programs)
        if not self.programs:
            raise ProtocolError("a system needs at least one process")

    @property
    def n_processes(self) -> int:
        return len(self.programs)

    def build(self) -> "System":
        """Create a fresh system in its initial configuration."""
        return System(self)

    def run(self, scheduler, max_steps: int = 100_000) -> Execution:
        """Build a fresh system and run it to quiescence under ``scheduler``."""
        return self.build().run(scheduler, max_steps=max_steps)

    def replay(self, decisions: Iterable[Tuple[int, int]]) -> "System":
        """Build a fresh system and apply the given ``(pid, choice)``
        decision sequence (e.g. from :attr:`Execution.decisions` or
        :attr:`Execution.full_decisions`).  A choice of
        :data:`~repro.runtime.execution.CRASH_CHOICE` crash-stops the
        pid instead of stepping it, and
        :data:`~repro.runtime.execution.RECOVER_CHOICE` revives it with
        amnesia — so faulty runs replay exactly."""
        system = self.build()
        for pid, choice in decisions:
            if choice == CRASH_CHOICE:
                system.crash(pid)
            elif choice == RECOVER_CHOICE:
                system.recover(pid)
            else:
                system.step(pid, choice)
        return system


class System:
    """A live configuration: object states plus process control states."""

    def __init__(self, spec: SystemSpec):
        self.spec = spec
        #: Attribution flag for observability: set by the explorer while it
        #: re-executes an already-visited decision prefix, so ``step``
        #: events can separate replay overhead from first-time (on-path)
        #: work.  Purely observational — never changes semantics.
        self.replaying = False
        self.object_states: Dict[str, Any] = {
            name: obj.initial_state() for name, obj in spec.objects.items()
        }
        self.processes: List[Process] = [
            Process(pid, factory) for pid, factory in enumerate(spec.programs)
        ]
        self.trace = Execution()
        for process in self.processes:
            self._prime_and_drain(process)

    # ------------------------------------------------------------------
    # Configuration inspection
    # ------------------------------------------------------------------
    def enabled_pids(self) -> List[int]:
        """Pids of processes that can take a step now."""
        return [p.pid for p in self.processes if p.status is ProcessStatus.POISED]

    def pending_operation(self, pid: int) -> Optional[Operation]:
        """The operation process ``pid`` is poised to perform."""
        return self.processes[pid].pending_operation

    def outcomes_for(self, pid: int) -> List[Tuple[Any, Any]]:
        """Enumerate ``(response, new_state)`` outcomes of ``pid``'s pending
        operation without committing to any of them.

        Deterministic objects yield a single outcome; nondeterministic ones
        yield one per adversary choice.  Misuse in ``hang_on_misuse`` mode is
        reported as the empty list (the step blocks the process).
        """
        process = self.processes[pid]
        operation = process.pending_operation
        if operation is None:
            raise SchedulingError(f"process {pid} has no pending operation")
        obj = self._object_spec(operation)
        state = self.object_states[operation.target]
        try:
            outcomes = obj.apply(state, operation.method, operation.args)
        except IllegalOperationError:
            if getattr(obj, "hang_on_misuse", False):
                return []
            raise
        if not outcomes:
            raise ProtocolError(
                f"object {operation.target!r} returned no outcomes for "
                f"{operation} — specs must return at least one outcome"
            )
        return outcomes

    def is_quiescent(self) -> bool:
        """True when no process can take another step."""
        return not self.enabled_pids()

    def configuration(self) -> Dict[str, Any]:
        """Structured snapshot naming the current configuration.

        The substrate for content-addressed state identity (audit today,
        state caching later — see :mod:`repro.obs.fingerprint`).  Shared
        state is the object states (``repr``-encoded, sorted by name).
        Process control state is extensional: a generator cannot be
        serialized, but it is a deterministic function of its program
        (fixed per pid) and the responses delivered to it, so
        ``(status, delivered responses, pending operation)`` names it
        exactly.  Crashes are covered through the ``"crashed"`` status,
        so configurations on crash branches never alias crash-free ones.
        A recovered generator only ever saw the responses delivered
        *since its last recovery*, so earlier incarnations' responses are
        excluded — the recovery count disambiguates the rest (two
        configurations differing only in dead history name the same
        reachable future, which is exactly what state identity is for).
        """
        last_recovery: Dict[int, int] = {}
        for at, pid in self.trace.recoveries:
            last_recovery[pid] = at
        responses: Dict[int, List[str]] = {p.pid: [] for p in self.processes}
        for step in self.trace.steps:
            if step.index >= last_recovery.get(step.pid, 0):
                responses[step.pid].append(repr(step.response))
        recovery_counts: Dict[int, int] = {}
        for _at, pid in self.trace.recoveries:
            recovery_counts[pid] = recovery_counts.get(pid, 0) + 1
        return {
            "objects": {
                name: repr(state)
                for name, state in sorted(self.object_states.items())
            },
            "processes": [
                {
                    "status": process.status.value,
                    "responses": responses[process.pid],
                    "pending": (
                        str(process.pending_operation)
                        if process.pending_operation is not None
                        else ""
                    ),
                    # Key present only on recovered processes, so
                    # crash-stop configurations keep their exact shape.
                    **(
                        {"recoveries": recovery_counts[process.pid]}
                        if process.pid in recovery_counts
                        else {}
                    ),
                }
                for process in self.processes
            ],
        }

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def step(self, pid: int, choice: int = 0) -> StepRecord:
        """Let ``pid`` perform its pending operation, selecting outcome
        ``choice`` if the object is nondeterministic."""
        process = self.processes[pid]
        if process.status is not ProcessStatus.POISED:
            raise SchedulingError(
                f"cannot step process {pid}: status is {process.status.value}"
            )
        operation = process.pending_operation
        assert operation is not None
        outcomes = self.outcomes_for(pid)
        if not outcomes:
            # Misuse under hang semantics: the step happens but never returns.
            process.block()
            record = StepRecord(
                index=len(self.trace.steps),
                pid=pid,
                operation=operation,
                response=None,
                choice=0,
                n_outcomes=0,
            )
            self.trace.steps.append(record)
            self._note_status(process)
            if _obs_events.is_enabled():
                _obs_events.emit(
                    "step",
                    pid=pid,
                    object=operation.target,
                    method=operation.method,
                    choice=0,
                    n_outcomes=0,
                    blocked=True,
                    **({"replay": True} if self.replaying else {}),
                )
            return record
        if not 0 <= choice < len(outcomes):
            raise SchedulingError(
                f"choice {choice} out of range for {len(outcomes)} outcomes "
                f"of {operation}"
            )
        response, new_state = outcomes[choice]
        self.object_states[operation.target] = new_state
        record = StepRecord(
            index=len(self.trace.steps),
            pid=pid,
            operation=operation,
            response=response,
            choice=choice,
            n_outcomes=len(outcomes),
        )
        self.trace.steps.append(record)
        process.deliver(response)
        self._drain_annotations(process)
        self._note_status(process)
        if _obs_events.is_enabled():
            _obs_events.emit(
                "step",
                pid=pid,
                object=operation.target,
                method=operation.method,
                choice=choice,
                n_outcomes=len(outcomes),
                **({"replay": True} if self.replaying else {}),
            )
        return record

    def crash(self, pid: int) -> None:
        """Crash-stop process ``pid`` (no-op on already-dead processes,
        so schedulers may re-assert a crash without corrupting the
        trace's crash record)."""
        process = self.processes[pid]
        if not process.is_live:
            return
        process.crash()
        self.trace.crashes.append((len(self.trace.steps), pid))
        self._note_status(process)
        if _obs_events.is_enabled():
            _obs_events.emit("crash", pid=pid, at_step=len(self.trace.steps))

    def recover(self, pid: int) -> None:
        """Revive crashed process ``pid`` with amnesia: its program
        restarts from scratch (re-primed to its first operation) while
        shared objects keep their state.  A no-op on processes that are
        not crashed, mirroring :meth:`crash`'s no-op tolerance so
        schedulers may re-assert a recovery without corrupting the
        trace's recovery record."""
        process = self.processes[pid]
        if process.status is not ProcessStatus.CRASHED:
            return
        process.recover()
        self.trace.recoveries.append((len(self.trace.steps), pid))
        self._prime_and_drain(process)
        if _obs_events.is_enabled():
            _obs_events.emit("recover", pid=pid, at_step=len(self.trace.steps))

    def run(self, scheduler, max_steps: int = 100_000, budget=None) -> Execution:
        """Drive the system with ``scheduler`` until quiescence or budget.

        Returns the execution trace; final statuses and outputs are filled
        in regardless of how the run ended.  ``budget`` (default: the
        process-wide active :class:`~repro.faults.budget.Budget`, if any)
        is charged for the executed steps and consulted every 64 steps —
        an exhausted budget ends the run early with live processes still
        in the trace, which downstream verdicts report as INCONCLUSIVE
        rather than as a protocol failure.
        """
        if budget is None:
            budget = get_active_budget()
        steps = 0
        charged = 0
        interrupted = False
        while steps < max_steps:
            if budget is not None and steps - charged >= 64:
                budget.charge_steps(steps - charged)
                charged = steps
                if budget.exhausted_reason() is not None:
                    interrupted = True
                    break
            enabled = self.enabled_pids()
            if not enabled and not any(
                p.status is ProcessStatus.CRASHED for p in self.processes
            ):
                break
            # With crashed processes around the scheduler is still
            # consulted even when nothing is enabled — a crash-recovery
            # scheduler may revive someone; every bundled scheduler
            # returns None on an empty enabled set, ending the run.
            pid = scheduler.next_pid(self)
            if pid is None:
                break
            # Recompute after next_pid: a scheduler may crash or revive
            # processes as a side effect, shrinking or growing the set.
            enabled = self.enabled_pids()
            if pid not in enabled:
                raise SchedulingError(
                    f"scheduler chose disabled process {pid} (enabled: {enabled})"
                )
            if _obs_events.is_enabled():
                _obs_events.emit("decision", pid=pid, enabled=len(enabled))
            outcomes = self.outcomes_for(pid)
            choice = scheduler.choose(self, pid, len(outcomes)) if len(outcomes) > 1 else 0
            self.step(pid, choice)
            steps += 1
        if budget is not None and steps > charged:
            budget.charge_steps(steps - charged)
        if _obs_events.is_enabled():
            _obs_events.emit(
                "run_end",
                steps=steps,
                quiescent=self.is_quiescent(),
                interrupted=interrupted,
                scheduler=getattr(scheduler, "describe", lambda: type(scheduler).__name__)(),
            )
        return self.finalize()

    def finalize(self) -> Execution:
        """Record final statuses/outputs into the trace and return it."""
        for process in self.processes:
            self.trace.statuses[process.pid] = process.status
            if process.status is ProcessStatus.DONE:
                self.trace.outputs[process.pid] = process.output
        return self.trace

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _object_spec(self, operation: Operation) -> Any:
        try:
            return self.spec.objects[operation.target]
        except KeyError:
            raise ProtocolError(
                f"operation {operation} targets unknown object "
                f"{operation.target!r}; known: {sorted(self.spec.objects)}"
            ) from None

    def _prime_and_drain(self, process: Process) -> None:
        process.prime()
        self._drain_annotations(process)
        self._note_status(process)

    def _drain_annotations(self, process: Process) -> None:
        now = len(self.trace.steps)
        for annotation in process.fresh_annotations:
            self.trace.annotations.append((now, process.pid, annotation))
        process.fresh_annotations.clear()

    def _note_status(self, process: Process) -> None:
        self.trace.statuses[process.pid] = process.status
        if process.status is ProcessStatus.DONE:
            self.trace.outputs[process.pid] = process.output
