"""Deterministic simulator for asynchronous shared-memory computation.

This package is the substrate everything else in :mod:`repro` runs on.  It
models the standard asynchronous shared-memory model: a set of sequential
*processes* communicate only by applying atomic operations (*steps*) to
shared objects.  An *execution* is an alternating sequence of configurations
and steps chosen by a *scheduler* (the adversary).

Design notes
------------
* Processes are Python generators; a ``yield`` of an :class:`Operation` is a
  shared-memory step, and everything between yields is local computation.
  No OS threads are used anywhere, so every interleaving is reproducible and
  exhaustively explorable (see :mod:`repro.runtime.explorer`).
* Shared objects are pure state machines (:class:`repro.objects.base.ObjectSpec`),
  so the runtime can enumerate the outcomes of a nondeterministic operation
  before committing to one — exactly what model checking and valency
  arguments need.
"""

from repro.runtime.ops import Annotation, Operation, invoke
from repro.runtime.process import Process, ProcessStatus
from repro.runtime.execution import Execution, StepRecord
from repro.runtime.system import System, SystemSpec
from repro.runtime.scheduler import (
    CrashingScheduler,
    PriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
    SoloScheduler,
)
from repro.runtime.explorer import (
    ExplorationStatistics,
    Explorer,
    check_all_executions,
    explore_executions,
    find_execution,
)
from repro.runtime.history import History, HistoryEvent, history_from_execution
from repro.runtime.trace_io import (
    load_trace_json,
    replay_trace,
    trace_to_dict,
    trace_to_json,
)

__all__ = [
    "Annotation",
    "Operation",
    "invoke",
    "Process",
    "ProcessStatus",
    "Execution",
    "StepRecord",
    "System",
    "SystemSpec",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ScriptedScheduler",
    "PriorityScheduler",
    "SoloScheduler",
    "CrashingScheduler",
    "Explorer",
    "ExplorationStatistics",
    "explore_executions",
    "check_all_executions",
    "find_execution",
    "History",
    "HistoryEvent",
    "history_from_execution",
    "trace_to_dict",
    "trace_to_json",
    "replay_trace",
    "load_trace_json",
]
