"""Exhaustive schedule exploration — bounded model checking.

The wait-free model quantifies over every adversary.  For small systems we
can *enumerate* that quantifier: the explorer walks the tree of all
scheduling decisions (and all nondeterministic-object outcomes), yielding
every maximal execution.  Theorem-level claims ("every execution decides at
most k values", "this implementation is linearizable in every execution")
become terminating checks.

Because Python generators cannot be forked, branches are replayed from the
initial configuration rather than deep-copied.  The cost is
O(nodes x depth); with the depths used by the experiments (tens of steps)
this is the pragmatic trade-off — see DESIGN.md, "Key design decisions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import ExplorationLimitError
from repro.obs import events as _obs_events
from repro.runtime.execution import Execution
from repro.runtime.system import System, SystemSpec

Decision = Tuple[int, int]  # (pid, outcome choice)


@dataclass
class ExplorationStatistics:
    """Counters reported by an exploration pass.

    ``steps_on_path`` counts first-time steps (one per tree edge — the
    decision appended when a node is first visited); ``steps_replayed``
    counts the redundant re-executions of earlier prefix decisions that
    the replay-based walk pays for them.  Their sum is every simulator
    step the exploration actually executed, which matches the event-
    derived ``steps_total`` when a sink is attached.
    """

    executions: int = 0
    steps_replayed: int = 0
    steps_on_path: int = 0
    max_depth_seen: int = 0
    truncated: int = 0  # executions cut off by the depth bound

    def merge(self, other: "ExplorationStatistics") -> None:
        self.executions += other.executions
        self.steps_replayed += other.steps_replayed
        self.steps_on_path += other.steps_on_path
        self.max_depth_seen = max(self.max_depth_seen, other.max_depth_seen)
        self.truncated += other.truncated

    @property
    def steps_total(self) -> int:
        """Every simulator step executed (replayed + on-path)."""
        return self.steps_replayed + self.steps_on_path

    @property
    def replay_overhead(self) -> float:
        """Redundant steps per useful step — the price of the
        fork-by-replay design (0.0 when nothing was explored)."""
        if not self.steps_on_path:
            return 0.0
        return self.steps_replayed / self.steps_on_path


class Explorer:
    """Depth-first enumeration of all executions of a system spec.

    Parameters
    ----------
    spec:
        The system to explore.
    max_depth:
        Hard bound on execution length.  Wait-free protocols terminate well
        below any reasonable bound; hitting the bound is recorded in
        :attr:`stats.truncated` and, with ``strict=True``, raises
        :class:`~repro.errors.ExplorationLimitError` (a truncated branch
        means the claim "in all executions" was not fully checked).
    strict:
        Whether hitting ``max_depth`` is an error (default) or merely
        counted.
    pid_filter:
        Optional callable ``(system, enabled_pids) -> pids`` restricting
        which branches are taken — the hook used for partial-order or
        symmetry reduction by callers that know their protocol's structure.
    """

    def __init__(
        self,
        spec: SystemSpec,
        max_depth: int = 200,
        strict: bool = True,
        pid_filter: Optional[Callable[[System, List[int]], List[int]]] = None,
    ):
        self.spec = spec
        self.max_depth = max_depth
        self.strict = strict
        self.pid_filter = pid_filter
        self.stats = ExplorationStatistics()

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def executions(self) -> Iterator[Execution]:
        """Yield every maximal execution (all processes quiescent)."""
        yield from self._walk([])

    def check(self, predicate: Callable[[Execution], bool]) -> Optional[Execution]:
        """Verify ``predicate`` on every maximal execution.

        Returns ``None`` if the predicate held everywhere, otherwise the
        first counterexample execution (a replayable witness).
        """
        for execution in self.executions():
            if not predicate(execution):
                return execution
        return None

    def find(self, predicate: Callable[[Execution], bool]) -> Optional[Execution]:
        """Return the first maximal execution satisfying ``predicate``
        (an existence witness), or ``None``."""
        for execution in self.executions():
            if predicate(execution):
                return execution
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _replay(self, decisions: List[Decision], fresh: int = 0) -> System:
        """Rebuild a system at ``decisions``; the final ``fresh`` decisions
        are first-time (on-path) steps, everything before them is replay
        overhead.  The system's ``replaying`` flag tracks the boundary so
        step events carry the attribution."""
        system = self.spec.build()
        replayed = len(decisions) - fresh
        for index, (pid, choice) in enumerate(decisions):
            system.replaying = index < replayed
            system.step(pid, choice)
        system.replaying = False
        self.stats.steps_replayed += replayed
        self.stats.steps_on_path += fresh
        return system

    def _branches(self, system: System) -> List[Decision]:
        enabled = system.enabled_pids()
        if self.pid_filter is not None:
            enabled = self.pid_filter(system, enabled)
        branches: List[Decision] = []
        for pid in enabled:
            n = len(system.outcomes_for(pid))
            if n == 0:  # misuse-hang: a single blocking branch
                branches.append((pid, 0))
            else:
                branches.extend((pid, c) for c in range(n))
        return branches

    def _walk(self, prefix: List[Decision]) -> Iterator[Execution]:
        system = self._replay(prefix, fresh=1 if prefix else 0)
        self.stats.max_depth_seen = max(self.stats.max_depth_seen, len(prefix))
        branches = self._branches(system)
        observed = _obs_events.is_enabled()
        if observed:
            _obs_events.emit("frontier", depth=len(prefix), branches=len(branches))
        if not branches:
            self.stats.executions += 1
            if observed:
                _obs_events.emit("schedule_explored", depth=len(prefix))
            yield system.finalize()
            return
        if len(prefix) >= self.max_depth:
            self.stats.truncated += 1
            if observed:
                _obs_events.emit("schedule_truncated", depth=len(prefix))
            if self.strict:
                raise ExplorationLimitError(
                    f"execution exceeded max_depth={self.max_depth}; "
                    "raise the bound or check for non-termination"
                )
            self.stats.executions += 1
            yield system.finalize()
            return
        for decision in branches:
            yield from self._walk(prefix + [decision])


def explore_executions(
    spec: SystemSpec, max_depth: int = 200, strict: bool = True
) -> Iterator[Execution]:
    """Convenience wrapper: iterate all maximal executions of ``spec``."""
    yield from Explorer(spec, max_depth=max_depth, strict=strict).executions()


def check_all_executions(
    spec: SystemSpec,
    predicate: Callable[[Execution], bool],
    max_depth: int = 200,
) -> Optional[Execution]:
    """Check ``predicate`` over all executions; ``None`` means it held
    everywhere, otherwise the first counterexample is returned."""
    return Explorer(spec, max_depth=max_depth).check(predicate)


def find_execution(
    spec: SystemSpec,
    predicate: Callable[[Execution], bool],
    max_depth: int = 200,
) -> Optional[Execution]:
    """Find a witness execution satisfying ``predicate``, or ``None``."""
    return Explorer(spec, max_depth=max_depth).find(predicate)
