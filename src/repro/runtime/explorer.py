"""Exhaustive schedule exploration — bounded model checking.

The wait-free model quantifies over every adversary.  For small systems we
can *enumerate* that quantifier: the explorer walks the tree of all
scheduling decisions (and all nondeterministic-object outcomes), yielding
every maximal execution.  Theorem-level claims ("every execution decides at
most k values", "this implementation is linearizable in every execution")
become terminating checks.

Because Python generators cannot be forked, branches are replayed from the
initial configuration rather than deep-copied.  The cost is
O(nodes x depth); with the depths used by the experiments (tens of steps)
this is the pragmatic trade-off — see DESIGN.md, "Key design decisions".

Three robustness dimensions ride on the same walk (see docs/ROBUSTNESS.md):

* **crash branching** (``max_crashes=f``): "crash pid p now" decisions are
  interleaved with scheduling decisions, so the enumeration covers every
  crash *timing*, not just crash sets dead from the start — the regime
  where recoverable-power distinctions actually live.  Recovery
  branching (``max_recoveries=r``) composes with it: "revive pid p with
  amnesia now" becomes one more adversary decision, turning the walk
  into the crash-*recovery* adversary;
* **budgets**: a :class:`~repro.faults.budget.Budget` (explicit or the
  process-wide active one) stops the walk gracefully, leaving
  :attr:`Explorer.interrupted` set instead of raising;
* **checkpointing**: the DFS frontier — the exact remaining work — is a
  small list of decision prefixes, periodically serialized to a
  :mod:`repro.faults.checkpoint` file and restorable with
  :meth:`Explorer.from_checkpoint`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExplorationLimitError
from repro.faults.budget import Budget, get_active_budget
from repro.faults.checkpoint import Checkpoint
from repro.faults.checkpoint import write_checkpoint as _write_checkpoint_file
from repro.faults.verdict import Verdict
from repro.obs import events as _obs_events
from repro.obs.coverage import CoverageEstimator
from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE, Execution
from repro.runtime.process import ProcessStatus
from repro.runtime.system import System, SystemSpec

#: (pid, outcome choice) — CRASH_CHOICE = crash, RECOVER_CHOICE = recover
Decision = Tuple[int, int]

#: The fault sentinels, for "is this a fault decision" tests.
FAULT_CHOICES = (CRASH_CHOICE, RECOVER_CHOICE)


@dataclass
class ExplorationStatistics:
    """Counters reported by an exploration pass.

    ``steps_on_path`` counts first-time steps (one per tree edge — the
    decision appended when a node is first visited); ``steps_replayed``
    counts the redundant re-executions of earlier prefix decisions that
    the replay-based walk pays for them.  Their sum is every simulator
    step the exploration actually executed, which matches the event-
    derived ``steps_total`` when a sink is attached.  Crash decisions are
    tracked separately (``faults_injected`` counts first-time crash
    branches taken; re-applying a crash during replay is not a step).
    """

    executions: int = 0
    steps_replayed: int = 0
    steps_on_path: int = 0
    max_depth_seen: int = 0
    truncated: int = 0  # executions cut off by the depth bound
    faults_injected: int = 0  # first-time crash decisions explored
    recoveries_injected: int = 0  # first-time recovery decisions explored

    def merge(self, other: "ExplorationStatistics") -> None:
        self.executions += other.executions
        self.steps_replayed += other.steps_replayed
        self.steps_on_path += other.steps_on_path
        self.max_depth_seen = max(self.max_depth_seen, other.max_depth_seen)
        self.truncated += other.truncated
        self.faults_injected += other.faults_injected
        self.recoveries_injected += other.recoveries_injected

    @property
    def steps_total(self) -> int:
        """Every simulator step executed (replayed + on-path)."""
        return self.steps_replayed + self.steps_on_path

    @property
    def replay_overhead(self) -> float:
        """Redundant steps per useful step — the price of the
        fork-by-replay design (0.0 when nothing was explored)."""
        if not self.steps_on_path:
            return 0.0
        return self.steps_replayed / self.steps_on_path


class Explorer:
    """Depth-first enumeration of all executions of a system spec.

    Parameters
    ----------
    spec:
        The system to explore.
    max_depth:
        Hard bound on execution length.  Wait-free protocols terminate well
        below any reasonable bound; hitting the bound is recorded in
        :attr:`stats.truncated` and, with ``strict=True``, raises
        :class:`~repro.errors.ExplorationLimitError` (a truncated branch
        means the claim "in all executions" was not fully checked).
    strict:
        Whether hitting ``max_depth`` is an error (default) or merely
        counted.
    pid_filter:
        Optional callable ``(system, enabled_pids) -> pids`` restricting
        which *scheduling* branches are taken — the hook used for
        partial-order or symmetry reduction by callers that know their
        protocol's structure.  Crash branches are drawn from the raw
        enabled set, so a filter that pins the schedule still explores
        every crash timing along it.
    max_crashes:
        Crash-branching budget: at every configuration with fewer than
        this many crashes so far, a "crash pid p now" branch is explored
        for each enabled (and crashable) process, in addition to the
        scheduling branches.  Back-to-back crash decisions are canonically
        ordered by pid, so each crash *set x timing* is enumerated once.
    crashable_pids:
        Restrict crash branches to these pids (default: all).
    max_recoveries:
        Recovery-branching budget (crash-recovery adversary): at every
        configuration with a crashed process and fewer than this many
        recoveries so far, a "recover pid p now" branch is explored in
        addition to the scheduling and crash branches.  A recovered
        process restarts its program with amnesia while shared objects
        keep their state.  Composes with ``max_crashes`` (recoveries
        only ever apply to processes a crash branch killed, so
        ``crashable_pids`` bounds them transitively) and shares the
        crash branches' canonical fault ordering, keeping the
        enumeration duplicate-free.
    budget:
        Deadline/step :class:`~repro.faults.budget.Budget`.  Defaults to
        the process-wide active budget at enumeration time.  When the
        budget runs out the walk stops, :attr:`interrupted` records the
        reason, and (if configured) a final checkpoint is written.
    checkpoint_path:
        When set, the DFS frontier is checkpointed here every
        ``checkpoint_every`` yielded executions, on budget exhaustion,
        and at the end of the walk (empty frontier = finished).
    heartbeat_interval:
        Minimum seconds between ``explore_heartbeat`` events — the live
        telemetry pulse carrying executions done, frontier size and depth
        histogram, execution rate, and the coverage/ETA estimate (see
        :mod:`repro.obs.coverage`).  Only emitted while the event bus is
        enabled; ``0.0`` emits one per execution (used by tests).
    auditor:
        Optional :class:`~repro.obs.audit.StateAuditor` observing the
        walk: every visited configuration (for revisit/orbit counting)
        and every completed execution (for commuting-pair sampling).
        Purely observational — the walk order, the yielded executions,
        and every verdict are identical with and without it; when unset
        (the default) the hooks cost one ``None`` check per node.
    execset:
        Optional :class:`~repro.obs.execset.ExecutionSetRecorder`
        folding every maximal execution into a content-addressed
        execution-set digest (see :mod:`repro.obs.execset`).  Observed
        at the final configuration, before the execution is yielded;
        its digest-so-far rides along in checkpoints so resumed runs
        merge cleanly.  Purely observational, same contract as
        ``auditor``; one ``None`` check per execution when unset.
    """

    def __init__(
        self,
        spec: SystemSpec,
        max_depth: int = 200,
        strict: bool = True,
        pid_filter: Optional[Callable[[System, List[int]], List[int]]] = None,
        max_crashes: int = 0,
        crashable_pids: Optional[Iterable[int]] = None,
        max_recoveries: int = 0,
        budget: Optional[Budget] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1000,
        heartbeat_interval: float = 0.5,
        auditor: Optional[Any] = None,
        execset: Optional[Any] = None,
    ):
        self.spec = spec
        self.max_depth = max_depth
        self.strict = strict
        self.pid_filter = pid_filter
        self.max_crashes = max_crashes
        self.crashable_pids = (
            None if crashable_pids is None else frozenset(crashable_pids)
        )
        self.max_recoveries = max_recoveries
        self.budget = budget
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.heartbeat_interval = heartbeat_interval
        self.auditor = auditor
        if auditor is not None and hasattr(auditor, "bind"):
            auditor.bind(spec)
        self.execset = execset
        self.stats = ExplorationStatistics()
        #: Reason the walk stopped early (budget exhaustion), or ``None``.
        self.interrupted: Optional[str] = None
        #: Executions yielded before this run started (from a checkpoint).
        self.resumed_executions = 0
        #: Run-ledger id recorded in checkpoints (set by the CLI) so a
        #: resumed run can name its parent (see :mod:`repro.obs.ledger`).
        self.run_id: Optional[str] = None
        self._initial_frontier: Optional[List[List[Decision]]] = None
        self._stack: Optional[List[List[Decision]]] = None
        self._budget: Optional[Budget] = None
        self._spec_meta: dict = {}
        self._clock = time.monotonic
        self._estimator = CoverageEstimator()
        self._walk_started: Optional[float] = None
        self._last_heartbeat = 0.0
        self._branch_sum = 0  # branches over all expanded interior nodes
        self._branch_nodes = 0
        self._leaf_depth_sum = 0  # depths of completed executions

    # ------------------------------------------------------------------
    # Construction from a checkpoint
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls, spec: SystemSpec, checkpoint: Checkpoint, **kwargs
    ) -> "Explorer":
        """Rebuild an explorer that visits exactly the executions the
        checkpointed run had not yet yielded.

        ``max_depth`` and ``max_crashes`` default to the checkpointed
        values; any keyword overrides them.  The spec must match the one
        the checkpoint was taken from (process count is validated here,
        deeper divergence surfaces as replay errors).
        """
        if checkpoint.n_processes and checkpoint.n_processes != spec.n_processes:
            raise ExplorationLimitError(
                f"checkpoint was taken for {checkpoint.n_processes} "
                f"processes, the spec has {spec.n_processes}"
            )
        kwargs.setdefault("max_depth", checkpoint.max_depth or 200)
        kwargs.setdefault("max_crashes", checkpoint.max_crashes)
        kwargs.setdefault("max_recoveries", checkpoint.max_recoveries)
        explorer = cls(spec, **kwargs)
        explorer._initial_frontier = [list(p) for p in checkpoint.frontier]
        explorer.resumed_executions = checkpoint.executions
        return explorer

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def executions(self) -> Iterator[Execution]:
        """Yield every maximal execution (all processes quiescent).

        Under recovery branching (``max_recoveries > 0``) a quiescent
        configuration that still holds crashed processes is yielded as a
        maximal execution *and* expanded through its recovery branches:
        reviving a dead process is the adversary's option, never its
        obligation, so the crash-stop outcome ("they stay dead") remains
        part of the enumerated space — ``max_recoveries=r`` strictly
        subsumes ``max_recoveries=0``.
        """
        if self._initial_frontier is not None:
            yield from self._walk_frontier(self._initial_frontier)
        else:
            yield from self._walk([])

    def check(self, predicate: Callable[[Execution], bool]) -> Optional[Execution]:
        """Verify ``predicate`` on every maximal execution.

        Returns ``None`` if the predicate held everywhere, otherwise the
        first counterexample execution (a replayable witness).  When the
        walk was cut short, ``None`` only means "no counterexample found
        so far" — consult :attr:`interrupted` or use :meth:`check_verdict`.

        While a :mod:`repro.obs.witness` store is active, the
        counterexample is archived as a ``repro-witness/1`` bundle
        before it is returned.
        """
        for execution in self.executions():
            if not predicate(execution):
                self._capture_witness(execution, kind="counterexample")
                return execution
        return None

    def check_verdict(
        self, predicate: Callable[[Execution], bool]
    ) -> Tuple[Verdict, Optional[Execution], str]:
        """Budget-aware :meth:`check`: ``(verdict, witness, reason)``.

        ``PROVED`` — predicate held over the complete enumeration;
        ``REFUTED`` — ``witness`` violates it (sound even under budget);
        ``INCONCLUSIVE`` — the walk was cut short first.
        """
        witness = self.check(predicate)
        if witness is not None:
            return Verdict.REFUTED, witness, "counterexample found"
        if self.interrupted is not None:
            return Verdict.INCONCLUSIVE, None, self.interrupted
        return Verdict.PROVED, None, ""

    def find(self, predicate: Callable[[Execution], bool]) -> Optional[Execution]:
        """Return the first maximal execution satisfying ``predicate``
        (an existence witness), or ``None``.

        Like :meth:`check`, archives the witness when a
        :mod:`repro.obs.witness` store is active."""
        for execution in self.executions():
            if predicate(execution):
                self._capture_witness(execution, kind="existence")
                return execution
        return None

    def _capture_witness(self, execution: Execution, kind: str) -> None:
        """Archive a deciding execution through the active witness store.

        Imported lazily: :mod:`repro.obs.witness` depends on this module's
        package, and the fast path (no store active) is a cached-module
        lookup plus one ``None`` check.
        """
        from repro.obs import witness as _obs_witness

        if _obs_witness.get_active_store() is None:
            return
        _obs_witness.capture(
            execution,
            kind=kind,
            source=f"explorer.{'check' if kind == 'counterexample' else 'find'}",
            spec=self._spec_meta or None,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def set_spec_meta(self, **meta) -> None:
        """Attach opaque spec provenance recorded in checkpoints (used by
        the CLI so ``repro explore --resume FILE`` can rebuild the spec)."""
        self._spec_meta = dict(meta)

    def write_checkpoint(self, path: Optional[str] = None) -> str:
        """Serialize the current frontier (pending decision prefixes) to
        ``path`` (default: ``checkpoint_path``), atomically.

        Callable at any point: before the walk starts the frontier is the
        root (everything pending); after it finishes, empty (done).  The
        CLI calls this from its SIGINT handler.
        """
        destination = path or self.checkpoint_path
        if destination is None:
            raise ValueError("no checkpoint path configured")
        if self._stack is not None:
            frontier = [list(p) for p in self._stack]
        elif self._initial_frontier is not None:
            frontier = [list(p) for p in self._initial_frontier]
        else:
            frontier = [[]]
        _write_checkpoint_file(
            destination,
            n_processes=self.spec.n_processes,
            frontier=frontier,
            executions=self.total_executions,
            max_depth=self.max_depth,
            max_crashes=self.max_crashes,
            max_recoveries=self.max_recoveries,
            stats=asdict(self.stats),
            spec=self._spec_meta,
            run_id=self.run_id,
            execset=(
                self.execset.checkpoint_state()
                if self.execset is not None
                else None
            ),
        )
        return destination

    @property
    def total_executions(self) -> int:
        """Executions yielded across the whole exploration, including any
        checkpointed run this one resumed."""
        return self.resumed_executions + self.stats.executions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _replay(self, decisions: List[Decision], fresh: int = 0) -> System:
        """Rebuild a system at ``decisions``; the final ``fresh`` decisions
        are first-time (on-path) steps, everything before them is replay
        overhead.  The system's ``replaying`` flag tracks the boundary so
        step events carry the attribution."""
        system = self.spec.build()
        replayed = len(decisions) - fresh
        steps_replayed = 0
        steps_fresh = 0
        for index, (pid, choice) in enumerate(decisions):
            if choice == CRASH_CHOICE:
                system.crash(pid)
                if index >= replayed:
                    self.stats.faults_injected += 1
                continue
            if choice == RECOVER_CHOICE:
                system.recover(pid)
                if index >= replayed:
                    self.stats.recoveries_injected += 1
                continue
            system.replaying = index < replayed
            system.step(pid, choice)
            if index < replayed:
                steps_replayed += 1
            else:
                steps_fresh += 1
        system.replaying = False
        self.stats.steps_replayed += steps_replayed
        self.stats.steps_on_path += steps_fresh
        if self._budget is not None:
            self._budget.charge_steps(steps_replayed + steps_fresh)
        return system

    def _branches(self, system: System, prefix: List[Decision]) -> List[Decision]:
        enabled = system.enabled_pids()
        step_pids = enabled
        if self.pid_filter is not None:
            step_pids = self.pid_filter(system, list(enabled))
        branches: List[Decision] = []
        for pid in step_pids:
            n = len(system.outcomes_for(pid))
            if n == 0:  # misuse-hang: a single blocking branch
                branches.append((pid, 0))
            else:
                branches.extend((pid, c) for c in range(n))
        if self.max_crashes or self.max_recoveries:
            # Canonical fault ordering: fault decisions (crash or recover)
            # on distinct pids commute when back-to-back — both orders
            # leave identical (step_index, pid) fault records, hence
            # identical executions — so a run of consecutive fault
            # decisions is explored in non-decreasing pid order only and
            # each fault multiset lands at each timing exactly once.
            # Same-pid immediate repeats are excluded by liveness (a
            # crashed pid is not enabled, a recovered pid is not crashed),
            # so on crash-only exploration this degenerates to the old
            # strictly-increasing-pid rule.
            min_fault_pid = 0
            if prefix and prefix[-1][1] in FAULT_CHOICES:
                min_fault_pid = prefix[-1][0]
        if self.max_crashes:
            crashes_so_far = sum(1 for _pid, c in prefix if c == CRASH_CHOICE)
            if crashes_so_far < self.max_crashes:
                for pid in enabled:
                    if pid < min_fault_pid:
                        continue
                    if self.crashable_pids is not None and pid not in self.crashable_pids:
                        continue
                    branches.append((pid, CRASH_CHOICE))
        if self.max_recoveries:
            recoveries_so_far = sum(
                1 for _pid, c in prefix if c == RECOVER_CHOICE
            )
            if recoveries_so_far < self.max_recoveries:
                # Like crash branches, recovery branches ignore any
                # pid_filter: a pinned schedule still explores every
                # recovery timing along it.  Only crashed processes can
                # recover, so crashable_pids bounds these transitively.
                for process in system.processes:
                    if process.status is not ProcessStatus.CRASHED:
                        continue
                    if process.pid < min_fault_pid:
                        continue
                    branches.append((process.pid, RECOVER_CHOICE))
        return branches

    def _walk(self, prefix: Sequence[Decision]) -> Iterator[Execution]:
        yield from self._walk_frontier([list(prefix)])

    def _walk_frontier(
        self, frontier: List[List[Decision]]
    ) -> Iterator[Execution]:
        """DFS over pending decision prefixes (the resumable core).

        ``frontier`` is a stack, top last; ``self._stack`` aliases the
        live stack so :meth:`write_checkpoint` — called between yields or
        from a signal handler — captures exactly the remaining work.
        """
        stack = self._stack = [list(p) for p in frontier]
        budget = self._budget = (
            self.budget if self.budget is not None else get_active_budget()
        )
        if budget is not None:
            budget.start()
        since_checkpoint = 0
        self._walk_started = self._clock()
        self._last_heartbeat = self._walk_started
        while stack:
            observed = _obs_events.is_enabled()
            if budget is not None:
                reason = budget.exhausted_reason()
                if reason is not None:
                    self._interrupt(reason, observed)
                    return
            prefix = stack.pop()
            system = self._replay(prefix, fresh=1 if prefix else 0)
            self.stats.max_depth_seen = max(self.stats.max_depth_seen, len(prefix))
            branches = self._branches(system, prefix)
            if self.auditor is not None:
                self.auditor.observe_configuration(system, depth=len(prefix))
            if observed:
                _obs_events.emit(
                    "frontier", depth=len(prefix), branches=len(branches)
                )
            if branches and len(prefix) < self.max_depth:
                self._branch_sum += len(branches)
                self._branch_nodes += 1
                for decision in reversed(branches):
                    stack.append(prefix + [decision])
                # A quiescent configuration whose only branches are
                # recoveries is *also* maximal: the adversary may decline
                # to revive anyone, so the crash-stop outcome stays in
                # the enumeration.  Fall through and yield it in addition
                # to its recovery children.
                if any(choice != RECOVER_CHOICE for _pid, choice in branches):
                    continue
                if observed:
                    _obs_events.emit("schedule_explored", depth=len(prefix))
            elif branches:  # depth bound hit with work remaining
                self.stats.truncated += 1
                if observed:
                    _obs_events.emit("schedule_truncated", depth=len(prefix))
                if self.strict:
                    raise ExplorationLimitError(
                        f"execution exceeded max_depth={self.max_depth}; "
                        "raise the bound or check for non-termination"
                    )
            else:
                if observed:
                    _obs_events.emit("schedule_explored", depth=len(prefix))
            self.stats.executions += 1
            self._leaf_depth_sum += len(prefix)
            since_checkpoint += 1
            execution = system.finalize()
            if self.auditor is not None:
                self.auditor.observe_execution(execution)
            if self.execset is not None:
                # Must precede the checkpoint write below: a checkpoint
                # that counts this execution must also carry it in its
                # digest-so-far, or a crash landing between the two
                # leaves a permanent hole in the resumed run's set (the
                # prefix is already off the frontier).
                self.execset.observe(execution, system)
            if (
                self.checkpoint_path is not None
                and since_checkpoint >= self.checkpoint_every
            ):
                self.write_checkpoint()
                since_checkpoint = 0
            if observed:
                now = self._clock()
                if now - self._last_heartbeat >= self.heartbeat_interval:
                    self._last_heartbeat = now
                    self._heartbeat(now)
            yield execution
        self._stack = []
        if self.checkpoint_path is not None:
            self.write_checkpoint()  # empty frontier marks completion

    def _heartbeat(self, now: float) -> None:
        """Emit one ``explore_heartbeat`` telemetry event.

        Carries the raw walk observables (executions, frontier size and
        depth histogram, branch statistics, elapsed wall time) plus the
        coverage estimator's derived fields (rate / remaining / coverage
        / ETA — absent while not yet estimable).  Rate-limited by
        ``heartbeat_interval``; the O(frontier) depth histogram is cheap
        at that cadence.
        """
        stack = self._stack or []
        depths: dict = {}
        for prefix in stack:
            depth = len(prefix)
            depths[depth] = depths.get(depth, 0) + 1
        mean_branch = (
            self._branch_sum / self._branch_nodes if self._branch_nodes else 0.0
        )
        mean_leaf_depth = (
            self._leaf_depth_sum / self.stats.executions
            if self.stats.executions
            else 0.0
        )
        elapsed = now - (self._walk_started or now)
        estimate = self._estimator.update(
            executions=self.total_executions,
            elapsed=elapsed,
            frontier_depths=depths,
            mean_branch=mean_branch,
            mean_leaf_depth=mean_leaf_depth,
        )
        _obs_events.emit(
            "explore_heartbeat",
            executions=self.total_executions,
            frontier=len(stack),
            frontier_depths=depths,
            mean_branch=round(mean_branch, 3),
            mean_leaf_depth=round(mean_leaf_depth, 3),
            elapsed=round(elapsed, 3),
            max_depth_seen=self.stats.max_depth_seen,
            faults_injected=self.stats.faults_injected,
            recoveries_injected=self.stats.recoveries_injected,
            **estimate,
        )

    def _interrupt(self, reason: str, observed: bool) -> None:
        self.interrupted = reason
        if observed:
            _obs_events.emit(
                "exploration_interrupted",
                reason=reason,
                executions=self.total_executions,
                frontier=len(self._stack or []),
            )
        if self.checkpoint_path is not None:
            self.write_checkpoint()


def explore_executions(
    spec: SystemSpec, max_depth: int = 200, strict: bool = True
) -> Iterator[Execution]:
    """Convenience wrapper: iterate all maximal executions of ``spec``."""
    yield from Explorer(spec, max_depth=max_depth, strict=strict).executions()


def check_all_executions(
    spec: SystemSpec,
    predicate: Callable[[Execution], bool],
    max_depth: int = 200,
) -> Optional[Execution]:
    """Check ``predicate`` over all executions; ``None`` means it held
    everywhere, otherwise the first counterexample is returned."""
    return Explorer(spec, max_depth=max_depth).check(predicate)


def find_execution(
    spec: SystemSpec,
    predicate: Callable[[Execution], bool],
    max_depth: int = 200,
) -> Optional[Execution]:
    """Find a witness execution satisfying ``predicate``, or ``None``."""
    return Explorer(spec, max_depth=max_depth).find(predicate)
