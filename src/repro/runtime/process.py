"""Process abstraction: a sequential program advanced one step at a time.

A process wraps a generator produced by a *program factory* (a zero-argument
callable).  The runtime *primes* the process — running it up to its first
yielded :class:`~repro.runtime.ops.Operation` — so that the configuration
always exposes the operation each live process is *poised* to perform.
Valency (critical-configuration) arguments are phrased in exactly these
terms, which is why priming is part of the model rather than an
implementation detail.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.runtime.ops import Annotation, Operation

ProgramFactory = Callable[[], Generator]


class ProcessStatus(enum.Enum):
    """Lifecycle of a simulated process."""

    #: Created but not yet primed to its first operation.
    PENDING = "pending"
    #: Alive with a pending operation, waiting to be scheduled.
    POISED = "poised"
    #: Returned normally; ``output`` holds the returned value.
    DONE = "done"
    #: Crashed by the adversary; takes no further steps.
    CRASHED = "crashed"
    #: Parked forever after misusing an object in ``hang_on_misuse`` mode.
    BLOCKED = "blocked"


class Process:
    """A single simulated process.

    Parameters
    ----------
    pid:
        Process identifier, the index of the process in its system.
    factory:
        Zero-argument callable returning a fresh generator for the program.
        Keeping the factory (rather than the generator) is what allows
        replay-based exploration to rebuild identical systems.
    """

    def __init__(self, pid: int, factory: ProgramFactory):
        self.pid = pid
        self.factory = factory
        self.status = ProcessStatus.PENDING
        self.output: Any = None
        self.steps_taken = 0
        #: Annotations emitted since the process started, as
        #: ``(annotation, step_count_when_emitted)`` pairs, drained by the
        #: system into the execution trace.
        self.fresh_annotations: List[Annotation] = []
        self._generator: Optional[Generator] = None
        self._pending: Optional[Operation] = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def pending_operation(self) -> Optional[Operation]:
        """The operation this process is poised to perform, if any."""
        return self._pending

    @property
    def is_live(self) -> bool:
        """True if the process can still take steps."""
        return self.status in (ProcessStatus.PENDING, ProcessStatus.POISED)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Run local computation up to the first shared-memory operation.

        Annotations encountered on the way are collected; they cost no
        scheduling steps.  After priming the process is ``POISED`` (or
        ``DONE`` if the program returned without touching shared memory).
        """
        if self.status is not ProcessStatus.PENDING:
            return
        self._generator = self.factory()
        if not hasattr(self._generator, "send"):
            raise ProtocolError(
                f"program factory for process {self.pid} did not return a "
                f"generator (got {type(self._generator).__name__}); "
                "programs must be generator functions"
            )
        self._advance(None, first=True)

    def deliver(self, response: Any) -> None:
        """Complete the pending operation with ``response`` and advance to
        the next one.  One atomic step."""
        if self.status is not ProcessStatus.POISED:
            raise ProtocolError(
                f"cannot deliver a response to process {self.pid} in status "
                f"{self.status.value}"
            )
        self.steps_taken += 1
        self._advance(response, first=False)

    def crash(self) -> None:
        """Crash-stop the process; it is never scheduled again."""
        if self.status in (ProcessStatus.PENDING, ProcessStatus.POISED):
            self.status = ProcessStatus.CRASHED
            self._pending = None

    def recover(self) -> None:
        """Revive a crashed process with amnesia: the program restarts
        from scratch (the old generator and its in-flight operation are
        gone), while shared objects — owned by the system, not the
        process — keep whatever state the crash left behind.

        ``steps_taken`` is deliberately *not* reset: it is a runtime
        odometer (wait-freedom metrics count every step the process ever
        took), not program state.  Only valid from ``CRASHED``.
        """
        if self.status is not ProcessStatus.CRASHED:
            raise ProtocolError(
                f"cannot recover process {self.pid} in status "
                f"{self.status.value}; only crashed processes recover"
            )
        self.status = ProcessStatus.PENDING
        self.output = None
        self._generator = None
        self._pending = None
        self.fresh_annotations.clear()

    def block(self) -> None:
        """Park the process forever (object-misuse 'hang' semantics)."""
        self.status = ProcessStatus.BLOCKED
        self._pending = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _advance(self, value: Any, first: bool) -> None:
        assert self._generator is not None
        try:
            item = self._generator.send(None if first else value)
            while isinstance(item, Annotation):
                self.fresh_annotations.append(item)
                item = self._generator.send(None)
        except StopIteration as stop:
            self.status = ProcessStatus.DONE
            self.output = stop.value
            self._pending = None
            return
        if not isinstance(item, Operation):
            raise ProtocolError(
                f"process {self.pid} yielded {item!r}; programs may only "
                "yield Operation or Annotation values"
            )
        self._pending = item
        self.status = ProcessStatus.POISED
