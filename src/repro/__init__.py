"""repro — deterministic objects beyond the consensus hierarchy.

A shared-memory distributed-computing laboratory reproducing
"Deterministic Objects: Life Beyond Consensus" (Afek–Ellen–Gafni,
PODC 2016): the deterministic object families that share a consensus
number yet differ in synchronization power, together with every substrate
the result stands on — a deterministic asynchronous-shared-memory
simulator with exhaustive schedule exploration, the classical object zoo,
task solvability checking, wait-free protocol constructions
(set-consensus transfer, safe agreement, BG simulation, renaming,
snapshots, universal construction), and automated proof tools
(linearizability, valency, commutativity certificates).

Quickstart::

    from repro import FamilyMember, common2_refutation
    member = FamilyMember(n=2, k=1)
    print(member.describe())
    print(common2_refutation(k=1).statement())

See README.md for the architecture tour, DESIGN.md for the system
inventory (and the paper-text mismatch notice), and EXPERIMENTS.md for the
per-claim experiment index.
"""

from repro.errors import (
    ExplorationLimitError,
    IllegalOperationError,
    ImplementabilityError,
    NotLinearizableError,
    ProtocolError,
    ReproError,
    SchedulingError,
    TaskViolationError,
)
from repro.runtime import (
    Annotation,
    Execution,
    Explorer,
    History,
    Operation,
    Process,
    ProcessStatus,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
    SoloScheduler,
    System,
    SystemSpec,
    check_all_executions,
    explore_executions,
    find_execution,
    history_from_execution,
    invoke,
)
from repro.objects import (
    ArraySpec,
    AtomicSnapshotSpec,
    CompareAndSwapSpec,
    CounterSpec,
    DeterministicObjectSpec,
    DoorwaySpec,
    FetchAndAddSpec,
    NConsensusSpec,
    ObjectSpec,
    QueueSpec,
    RegisterSpec,
    SetConsensusSpec,
    StackSpec,
    StickyBitSpec,
    StickyRegisterSpec,
    SwapSpec,
    TestAndSetSpec,
)
from repro.tasks import (
    ConsensusTask,
    ElectionTask,
    KSetConsensusTask,
    KSetElectionTask,
    RenamingTask,
    StrongKSetElectionTask,
    Task,
    check_task_all_schedules,
    check_task_random_schedules,
    run_task_protocol,
)
from repro.core import (
    Common2Refutation,
    FamilyMember,
    HierarchyObjectSpec,
    SetConsensusPower,
    common2_refutation,
    consensus_number_of,
    cover_agreement,
    family_agreement,
    family_chain,
    family_hierarchy_graph,
    family_profile,
    implementability_conditions,
    is_implementable,
    max_agreement,
    set_consensus_lattice,
    strictness_witness,
)
from repro.analysis import (
    check_linearizable,
    classify_valence,
    commute_or_overwrite_certificate,
    consensus_counterexample,
    find_critical_configuration,
    is_linearizable,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "IllegalOperationError",
    "ImplementabilityError",
    "ProtocolError",
    "SchedulingError",
    "ExplorationLimitError",
    "NotLinearizableError",
    "TaskViolationError",
    # runtime
    "Operation",
    "Annotation",
    "invoke",
    "Process",
    "ProcessStatus",
    "System",
    "SystemSpec",
    "Execution",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ScriptedScheduler",
    "SoloScheduler",
    "Explorer",
    "explore_executions",
    "check_all_executions",
    "find_execution",
    "History",
    "history_from_execution",
    # objects
    "ObjectSpec",
    "DeterministicObjectSpec",
    "RegisterSpec",
    "ArraySpec",
    "CounterSpec",
    "DoorwaySpec",
    "AtomicSnapshotSpec",
    "TestAndSetSpec",
    "SwapSpec",
    "FetchAndAddSpec",
    "CompareAndSwapSpec",
    "QueueSpec",
    "StackSpec",
    "StickyBitSpec",
    "StickyRegisterSpec",
    "NConsensusSpec",
    "SetConsensusSpec",
    # tasks
    "Task",
    "ConsensusTask",
    "ElectionTask",
    "KSetConsensusTask",
    "KSetElectionTask",
    "StrongKSetElectionTask",
    "RenamingTask",
    "run_task_protocol",
    "check_task_all_schedules",
    "check_task_random_schedules",
    # core
    "HierarchyObjectSpec",
    "FamilyMember",
    "SetConsensusPower",
    "max_agreement",
    "is_implementable",
    "implementability_conditions",
    "cover_agreement",
    "family_profile",
    "family_agreement",
    "family_chain",
    "family_hierarchy_graph",
    "set_consensus_lattice",
    "strictness_witness",
    "Common2Refutation",
    "common2_refutation",
    "consensus_number_of",
    # analysis
    "is_linearizable",
    "check_linearizable",
    "classify_valence",
    "find_critical_configuration",
    "consensus_counterexample",
    "commute_or_overwrite_certificate",
]
