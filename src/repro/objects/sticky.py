"""Sticky bits and sticky registers — consensus number infinity.

A sticky register keeps the first value ever written and returns it to every
subsequent operation; it solves consensus for any number of processes and
anchors the top of the hierarchy in tests and hierarchy plots.  The
n-*bounded* variant (which stops answering coherently after n accesses and
therefore has consensus number exactly n) lives in
:mod:`repro.objects.consensus_object`.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec

#: State/response marker for "never written".
UNSET = "unset"


class StickyBitSpec(DeterministicObjectSpec):
    """A sticky bit: first ``set(b)`` (b in {0, 1}) wins; ``read`` returns
    the stuck value or ``UNSET``.  ``set`` returns the stuck value, so a
    caller learns whether it won."""

    def initial_state(self) -> Any:
        return UNSET

    def do_set(self, state: Any, bit: int) -> Tuple[Any, Any]:
        if bit not in (0, 1):
            raise IllegalOperationError(f"sticky bit accepts 0 or 1, got {bit!r}")
        if state == UNSET:
            return bit, bit
        return state, state

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state


class StickyRegisterSpec(DeterministicObjectSpec):
    """A sticky register over arbitrary values: ``propose(v)`` returns the
    first value ever proposed (installing ``v`` if it is first).

    This *is* a consensus object for arbitrarily many processes —
    consensus number infinity."""

    def initial_state(self) -> Any:
        return UNSET

    def do_propose(self, state: Any, value: Any) -> Tuple[Any, Any]:
        if value is None:
            raise IllegalOperationError("cannot propose None (reserved as ⊥)")
        if state == UNSET:
            return value, value
        return state, state

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state
