"""Atomic read/write registers and register arrays.

Registers are the consensus-number-1 baseline of the hierarchy: the paper's
headline family is "stronger than registers yet no stronger than n-consensus
in consensus number".  Both single registers and fixed-size arrays (a single
object exposing indexed cells, convenient for announce arrays) are provided.

A register may optionally be declared single-writer (SWMR) — writes by any
other process raise, which catches protocol bugs in constructions whose
correctness depends on the SWMR discipline (e.g. the snapshot
implementation).  Enforcement uses the writer id passed explicitly by the
program, keeping object specs independent of runtime internals.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec


class RegisterSpec(DeterministicObjectSpec):
    """Multi-writer multi-reader atomic register.

    Operations
    ----------
    ``read()`` -> current value
    ``write(value)`` -> ``None``
    ``write_by(writer, value)`` -> ``None`` (enforces SWMR if configured)

    Parameters
    ----------
    initial:
        Initial value (default ``None``, playing the role of the papers' ⊥).
    single_writer:
        If set to a pid, only ``write_by`` calls with that pid may write.
    """

    def __init__(self, initial: Any = None, single_writer: Optional[int] = None):
        self.initial = initial
        self.single_writer = single_writer

    def initial_state(self) -> Any:
        return self.initial

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state

    def do_write(self, state: Any, value: Any) -> Tuple[Any, Any]:
        if self.single_writer is not None:
            raise IllegalOperationError(
                "SWMR register requires write_by(writer, value)"
            )
        return None, value

    def do_write_by(self, state: Any, writer: int, value: Any) -> Tuple[Any, Any]:
        if self.single_writer is not None and writer != self.single_writer:
            raise IllegalOperationError(
                f"SWMR register owned by p{self.single_writer}; "
                f"p{writer} attempted to write"
            )
        return None, value


class ArraySpec(DeterministicObjectSpec):
    """Fixed-size array of atomic registers, addressed by index.

    A single shared object exposing ``read(i)``, ``write(i, v)`` and
    ``read_all()``.  Note ``read_all`` is a *non-atomic convenience only for
    sequential post-processing*; concurrent algorithms that need an atomic
    view must use :class:`~repro.objects.snapshot.AtomicSnapshotSpec` or the
    register-based snapshot implementation.  To keep simulated algorithms
    honest, ``read_all`` can be disabled (the default for algorithm work).

    State: a tuple of length ``size``.
    """

    def __init__(self, size: int, initial: Any = None, allow_read_all: bool = False):
        if size <= 0:
            raise ValueError("array size must be positive")
        self.size = size
        self.initial = initial
        self.allow_read_all = allow_read_all

    def initial_state(self) -> Tuple[Any, ...]:
        return (self.initial,) * self.size

    def _check_index(self, index: int) -> None:
        if not isinstance(index, int) or not 0 <= index < self.size:
            raise IllegalOperationError(
                f"array index {index!r} out of range [0, {self.size})"
            )

    def do_read(self, state: Tuple[Any, ...], index: int) -> Tuple[Any, Any]:
        self._check_index(index)
        return state[index], state

    def do_write(self, state: Tuple[Any, ...], index: int, value: Any) -> Tuple[Any, Any]:
        self._check_index(index)
        new_state = state[:index] + (value,) + state[index + 1:]
        return None, new_state

    def do_read_all(self, state: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if not self.allow_read_all:
            raise IllegalOperationError(
                "read_all is disabled on this array; atomic multi-cell reads "
                "require a snapshot object"
            )
        return state, state
