"""Deterministic n-bounded consensus objects.

``propose(v)`` returns the first value ever proposed; only the first ``n``
proposals are answered, and any later proposal is misuse (the papers'
"hangs the system undetectably").  The budget is what pins the consensus
number at exactly ``n``:

* n processes solve consensus with one object (everyone proposes, everyone
  gets the first value);
* n+1 processes cannot: some process must be the (n+1)-st on every object
  it touches in an adversarial schedule, and registers cannot rescue it.

This is the standard "n-consensus object" the hierarchy is phrased in
("objects that can be used to solve consensus among at most n processes"),
in a deterministic, oblivious packaging.  The unbounded version is
:class:`repro.objects.sticky.StickyRegisterSpec`.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec

#: First-slot marker for "no value proposed yet".
UNSET = "unset"


class NConsensusSpec(DeterministicObjectSpec):
    """Deterministic consensus object answering at most ``n`` proposals.

    State: ``(first_value, proposals_so_far)``.

    Parameters
    ----------
    n:
        Proposal budget (the object's consensus number).
    hang_on_misuse:
        If True, over-budget proposals block the caller forever instead of
        raising; see :class:`~repro.errors.IllegalOperationError`.
    """

    def __init__(self, n: int, hang_on_misuse: bool = False):
        if n < 1:
            raise ValueError("n-consensus needs n >= 1")
        self.n = n
        self.hang_on_misuse = hang_on_misuse

    def initial_state(self) -> Tuple[Any, int]:
        return (UNSET, 0)

    def do_propose(self, state: Tuple[Any, int], value: Any) -> Tuple[Any, Any]:
        first, count = state
        if value is None:
            raise IllegalOperationError("cannot propose None (reserved as ⊥)")
        if count >= self.n:
            raise IllegalOperationError(
                f"{self.n}-consensus object exhausted: proposal #{count + 1}"
            )
        if first == UNSET:
            first = value
        return first, (first, count + 1)
