"""Shared base objects: the memory the paper's world is built from.

Every object is a pure state machine (:class:`~repro.objects.base.ObjectSpec`)
usable both by the live runtime and by the exhaustive explorer.  The package
covers the classical menagerie referenced throughout the
consensus-hierarchy literature:

* consensus number 1 — read/write registers, counters, snapshots;
* consensus number 2 — test-and-set, swap, fetch-and-add, FIFO queue, stack
  (the Common2 cast);
* consensus number n — the deterministic n-bounded consensus object;
* consensus number infinity — compare-and-swap, sticky bits;
* nondeterministic (m, j)-set-consensus objects (the classical task-derived
  objects the paper's deterministic family is measured against);
* recoverable variants (caller-keyed test-and-set, persistent register)
  that keep their power under the crash-recovery adversary.
"""

from repro.objects.base import DeterministicObjectSpec, ObjectSpec
from repro.objects.register import ArraySpec, RegisterSpec
from repro.objects.counter import CounterSpec, DoorwaySpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.objects.rmw import (
    CompareAndSwapSpec,
    FetchAndAddSpec,
    SwapSpec,
    TestAndSetSpec,
)
from repro.objects.queue_stack import QueueSpec, StackSpec
from repro.objects.generic_rmw import (
    GenericRMWSpec,
    commuting_family,
    mixed_family,
    overwriting_family,
)
from repro.objects.sticky import StickyBitSpec, StickyRegisterSpec
from repro.objects.consensus_object import NConsensusSpec
from repro.objects.set_consensus import SetConsensusSpec
from repro.objects.recoverable import (
    PersistentRegisterSpec,
    RecoverableTestAndSetSpec,
)

__all__ = [
    "ObjectSpec",
    "DeterministicObjectSpec",
    "RegisterSpec",
    "ArraySpec",
    "CounterSpec",
    "DoorwaySpec",
    "AtomicSnapshotSpec",
    "TestAndSetSpec",
    "SwapSpec",
    "FetchAndAddSpec",
    "CompareAndSwapSpec",
    "QueueSpec",
    "StackSpec",
    "GenericRMWSpec",
    "commuting_family",
    "overwriting_family",
    "mixed_family",
    "StickyBitSpec",
    "StickyRegisterSpec",
    "NConsensusSpec",
    "SetConsensusSpec",
    "RecoverableTestAndSetSpec",
    "PersistentRegisterSpec",
]
