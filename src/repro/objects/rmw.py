"""Classical read-modify-write primitives.

These populate the hierarchy levels the paper's family is compared against:

* test-and-set, swap, fetch-and-add — consensus number 2 (Herlihy 1991).
  Swap is also the degenerate k = 2 member of ring-style families: a ring
  of two cells where each write returns the other cell's previous content
  collapses to a swap-like exchange.
* compare-and-swap — consensus number infinity.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.objects.base import DeterministicObjectSpec


class TestAndSetSpec(DeterministicObjectSpec):
    """One-bit test-and-set; ``test_and_set()`` returns the *old* bit.

    The first caller gets 0 (it "wins"); everyone after gets 1.
    ``reset()`` restores 0.  State: 0 or 1.
    """

    def initial_state(self) -> int:
        return 0

    def do_test_and_set(self, state: int) -> Tuple[int, int]:
        return state, 1

    def do_read(self, state: int) -> Tuple[int, int]:
        return state, state

    def do_reset(self, state: int) -> Tuple[Any, int]:
        return None, 0


class SwapSpec(DeterministicObjectSpec):
    """Atomic exchange: ``swap(v)`` writes ``v`` and returns the old value."""

    def __init__(self, initial: Any = None):
        self.initial = initial

    def initial_state(self) -> Any:
        return self.initial

    def do_swap(self, state: Any, value: Any) -> Tuple[Any, Any]:
        return state, value

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state


class FetchAndAddSpec(DeterministicObjectSpec):
    """Atomic counter: ``fetch_and_add(d)`` returns the old value."""

    def __init__(self, initial: int = 0):
        self.initial = initial

    def initial_state(self) -> int:
        return self.initial

    def do_fetch_and_add(self, state: int, delta: int = 1) -> Tuple[int, int]:
        return state, state + delta

    def do_read(self, state: int) -> Tuple[int, int]:
        return state, state


class CompareAndSwapSpec(DeterministicObjectSpec):
    """Compare-and-swap; consensus number infinity.

    ``compare_and_swap(expected, new)`` installs ``new`` iff the current
    value equals ``expected``; returns the value read (so success is
    ``returned == expected``).
    """

    def __init__(self, initial: Any = None):
        self.initial = initial

    def initial_state(self) -> Any:
        return self.initial

    def do_compare_and_swap(self, state: Any, expected: Any, new: Any) -> Tuple[Any, Any]:
        if state == expected:
            return state, new
        return state, state

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state
