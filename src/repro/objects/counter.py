"""Counters and doorways.

* :class:`CounterSpec` — an increment/read counter.  Increment-and-read are
  *separate* atomic steps (a fetch-and-add would have consensus number 2;
  the split counter is implementable from registers for bounded use).  The
  split is exactly what the "flag principle" constructions in this line of
  work rely on: a process increments, then reads, and only proceeds when it
  read 1 — at most one process can ever observe 1.
* :class:`DoorwaySpec` — a closable gate: ``enter`` reads whether the door
  was open and every entry attempt closes it behind itself; only processes
  that saw it open "pass through".  Register-implementable (it is a read
  followed by a write of a constant; we expose the read-then-close pair as
  the two separate atomic steps ``read`` and ``close`` plus the convenience
  combined step used when atomicity is irrelevant).
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec


class CounterSpec(DeterministicObjectSpec):
    """Shared counter with separate ``inc()`` and ``read()`` steps.

    State: the integer count.
    """

    def __init__(self, initial: int = 0):
        self.initial = initial

    def initial_state(self) -> int:
        return self.initial

    def do_inc(self, state: int) -> Tuple[Any, int]:
        return None, state + 1

    def do_read(self, state: int) -> Tuple[int, int]:
        return state, state


class DoorwaySpec(DeterministicObjectSpec):
    """A one-way gate, initially open.

    Operations
    ----------
    ``read()`` -> ``"open"`` or ``"closed"`` (one atomic register read)
    ``close()`` -> ``None`` (one atomic register write)

    The canonical usage is the two-step sequence ``status = read(); close()``:
    processes that read ``"open"`` are said to have *entered the doorway*.
    Several processes may enter concurrently — the point of a doorway is
    only that anyone arriving after some entrant *finished closing* cannot
    enter.
    """

    OPEN = "open"
    CLOSED = "closed"

    def initial_state(self) -> str:
        return self.OPEN

    def do_read(self, state: str) -> Tuple[str, str]:
        return state, state

    def do_close(self, state: str) -> Tuple[Any, str]:
        return None, self.CLOSED
