"""Object model: shared objects as pure state machines.

An :class:`ObjectSpec` describes an object *type*: its initial state and,
for every state and operation, the set of possible ``(response, new_state)``
outcomes.  The spec itself is immutable and stateless; the runtime keeps one
*state value* per object instance.  This single representation serves three
masters:

* the live runtime commits one outcome per step;
* the exhaustive explorer branches over all outcomes;
* sequential-specification checks (linearizability) replay candidate
  orders through ``apply`` directly.

An object is **deterministic** exactly when ``apply`` always returns a
single outcome — the property at the heart of the paper.  States must be
treated as immutable values: ``apply`` returns fresh states and never
mutates its argument (tuples and frozen dataclasses are the norm).

Misuse (illegal arguments, one-shot port reuse, exceeding an invocation
budget) raises :class:`~repro.errors.IllegalOperationError`.  With
``hang_on_misuse=True`` the runtime converts the error into the papers'
literal semantics: the offending process blocks forever, undetectably.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import IllegalOperationError

Outcome = Tuple[Any, Any]  # (response, new_state)


class ObjectSpec:
    """Base class for shared-object types.

    Subclasses implement ``op_<method>(state, *args)`` for each supported
    operation, returning a list of ``(response, new_state)`` outcomes.
    :meth:`apply` dispatches on the method name.

    Attributes
    ----------
    deterministic:
        Declared determinism; verified opportunistically (a deterministic
        spec returning several outcomes is a bug and raises).
    hang_on_misuse:
        If True, the runtime parks misusing processes instead of raising.
    recoverable:
        Declared usefulness under the crash-*recovery* adversary: a
        recoverable object's operations stay meaningful when the caller
        may crash mid-protocol and retry them amnesiac (typically by
        making the decisive operation idempotent per caller).  Object
        state always survives crashes — this flag is about the *protocol
        contract*, not persistence (see :mod:`repro.objects.recoverable`).
    """

    deterministic: bool = False
    hang_on_misuse: bool = False
    recoverable: bool = False

    def initial_state(self) -> Any:
        raise NotImplementedError

    def methods(self) -> List[str]:
        """Names of the operations this object supports."""
        return sorted(
            name[len("op_"):] for name in dir(self) if name.startswith("op_")
        )

    def apply(self, state: Any, method: str, args: Sequence[Any]) -> List[Outcome]:
        """All possible outcomes of ``method(*args)`` in ``state``."""
        handler = getattr(self, f"op_{method}", None)
        if handler is None:
            raise IllegalOperationError(
                f"{type(self).__name__} has no operation {method!r} "
                f"(supported: {self.methods()})"
            )
        outcomes = handler(state, *args)
        if self.deterministic and len(outcomes) != 1:
            raise AssertionError(
                f"{type(self).__name__}.{method} claims determinism but "
                f"produced {len(outcomes)} outcomes"
            )
        return outcomes

    def apply_one(self, state: Any, method: str, args: Sequence[Any]) -> Outcome:
        """Apply and return the unique outcome (deterministic objects)."""
        outcomes = self.apply(state, method, args)
        if len(outcomes) != 1:
            raise IllegalOperationError(
                f"{type(self).__name__}.{method} is nondeterministic here "
                f"({len(outcomes)} outcomes); use apply() and choose"
            )
        return outcomes[0]


class DeterministicObjectSpec(ObjectSpec):
    """Convenience base for deterministic objects.

    Subclasses implement ``do_<method>(state, *args) -> (response, new_state)``
    (a single outcome); the plural wrapping is handled here.
    """

    deterministic = True

    def methods(self) -> List[str]:
        return sorted(
            name[len("do_"):] for name in dir(self) if name.startswith("do_")
        )

    def apply(self, state: Any, method: str, args: Sequence[Any]) -> List[Outcome]:
        handler = getattr(self, f"do_{method}", None)
        if handler is None:
            raise IllegalOperationError(
                f"{type(self).__name__} has no operation {method!r} "
                f"(supported: {self.methods()})"
            )
        return [handler(state, *args)]
