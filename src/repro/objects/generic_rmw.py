"""Generic read-modify-write objects.

Herlihy's classification of RMW operations: an RMW register applying a
function family F has consensus number

* 1 if every f in F is the identity (plain reads),
* at least 2 if some f is non-trivial (the old value distinguishes the
  first applier),
* and exactly 2 when F *commutes or overwrites* pairwise — e.g.
  ``f(x) = x + c`` (commuting) or ``f(x) = c`` (overwriting).

:class:`GenericRMWSpec` lets users build any such object from plain
Python functions and feed it straight into the commute-or-overwrite
certificate and the consensus protocols — a small laboratory for the
classification theory the paper's hierarchy refines.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec

#: A named state transformer.
Transformer = Callable[[Any], Any]


class GenericRMWSpec(DeterministicObjectSpec):
    """RMW register over a named function family.

    ``rmw(name)`` atomically applies the named function and returns the
    *old* value; ``read()`` is always available.

    Parameters
    ----------
    functions:
        Mapping from operation name to transformer ``f(state) -> state``.
    initial:
        Initial register value.
    """

    def __init__(self, functions: Dict[str, Transformer], initial: Any = 0):
        if not functions:
            raise ValueError("need at least one transformer")
        self.functions = dict(functions)
        self.initial = initial

    def initial_state(self) -> Any:
        return self.initial

    def do_rmw(self, state: Any, name: str) -> Tuple[Any, Any]:
        try:
            transformer = self.functions[name]
        except KeyError:
            raise IllegalOperationError(
                f"unknown RMW function {name!r}; known: "
                f"{sorted(self.functions)}"
            ) from None
        return state, transformer(state)

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state


def commuting_family(*constants: int) -> GenericRMWSpec:
    """Additive RMW family: ``add_c(x) = x + c`` — pairwise commuting,
    the canonical consensus-number-2 shape."""
    functions = {f"add_{c}": (lambda c: lambda x: x + c)(c) for c in constants}
    return GenericRMWSpec(functions, initial=0)


def overwriting_family(*constants: int) -> GenericRMWSpec:
    """Constant RMW family: ``set_c(x) = c`` — pairwise overwriting,
    also consensus number 2."""
    functions = {f"set_{c}": (lambda c: lambda x: c)(c) for c in constants}
    return GenericRMWSpec(functions, initial=None)


def mixed_family() -> GenericRMWSpec:
    """A family that neither commutes nor overwrites (``x+1`` vs
    ``2x``): strictly stronger pairs exist — the certificate locates
    them (still consensus number >= 2; such RMW mixes can climb
    higher)."""
    return GenericRMWSpec(
        {"inc": lambda x: x + 1, "double": lambda x: x * 2}, initial=1
    )
