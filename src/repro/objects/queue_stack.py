"""FIFO queue and stack — the canonical Common2 members.

Herlihy showed both have consensus number exactly 2.  The Common2
conjecture held that *every* consensus-number-2 object is wait-free
implementable from 2-consensus objects and registers; the paper reproduced
here refuted it with its O(2, k) family (see :mod:`repro.core.common2`).
Queue and stack sit in these experiments as the "well-behaved" side of
consensus number 2.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.objects.base import DeterministicObjectSpec

#: Response when removing from an empty container (the papers' ⊥).
EMPTY = "empty"


class QueueSpec(DeterministicObjectSpec):
    """FIFO queue: ``enqueue(v)``, ``dequeue()`` (``EMPTY`` when empty),
    ``peek()``.  State: tuple, front at index 0."""

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def do_enqueue(self, state: Tuple[Any, ...], value: Any) -> Tuple[Any, Any]:
        return None, state + (value,)

    def do_dequeue(self, state: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if not state:
            return EMPTY, state
        return state[0], state[1:]

    def do_peek(self, state: Tuple[Any, ...]) -> Tuple[Any, Any]:
        return (state[0] if state else EMPTY), state


class StackSpec(DeterministicObjectSpec):
    """LIFO stack: ``push(v)``, ``pop()`` (``EMPTY`` when empty), ``top()``.
    State: tuple, top at the end."""

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def do_push(self, state: Tuple[Any, ...], value: Any) -> Tuple[Any, Any]:
        return None, state + (value,)

    def do_pop(self, state: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if not state:
            return EMPTY, state
        return state[-1], state[:-1]

    def do_top(self, state: Tuple[Any, ...]) -> Tuple[Any, Any]:
        return (state[-1] if state else EMPTY), state
