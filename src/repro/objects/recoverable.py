"""Recoverable objects: primitives that stay useful under crash-recovery.

Under the crash-*stop* adversary an object's power is measured against
processes that die silently and never return.  The crash-*recovery*
adversary (``Explorer(max_recoveries=...)``) is strictly nastier: a
process can win a race, crash before telling anyone, and come back with
amnesia — it re-runs its protocol from scratch against shared state its
former life already mutated.  A plain test-and-set is the canonical
casualty: the revenant re-calls ``test_and_set()``, reads 1 (its *own*
old win), and concludes it lost.  Now nobody thinks they won.

Recoverable variants close the gap by making the decisive operation
*idempotent per caller* — the shape used throughout the recoverable
objects literature (cf. Golab–Ramaraju's recoverable mutual exclusion and
Ovens' recoverable consensus hierarchy, see PAPERS.md): the object
remembers *who* won, not just *that* someone won, so an amnesiac winner
re-wins.  Object state itself always survives crashes in this model
(shared memory is non-volatile); what these specs add is the protocol
contract, advertised via the :attr:`~repro.objects.base.ObjectSpec.
recoverable` flag.

Experiment E11 (:mod:`repro.experiments.suite`) uses these to exhibit the
power separation end to end: leader election on a plain TAS is PROVED
under crash-stop, REFUTED under crash-recovery, and PROVED again once
:class:`RecoverableTestAndSetSpec` is substituted.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.objects.base import DeterministicObjectSpec

State = Optional[int]  # winner pid, or None while unclaimed


class RecoverableTestAndSetSpec(DeterministicObjectSpec):
    """Test-and-set keyed by caller: idempotent re-win after amnesia.

    ``test_and_set(caller)`` returns the old bit like a plain TAS (0 to
    the winner, 1 to losers) but records the winner's pid, and returns 0
    *again* to the recorded winner on every retry — so a process that won,
    crashed, and recovered re-learns that it won instead of mistaking its
    own past for a rival's.  Losers still always see 1.

    State: the winner's pid, or ``None`` while unclaimed.  ``read()``
    returns the plain bit (0/1); ``winner()`` exposes the recorded pid.
    """

    recoverable = True

    def initial_state(self) -> State:
        return None

    def do_test_and_set(self, state: State, caller: int) -> Tuple[int, State]:
        if state is None:
            return 0, caller
        if state == caller:
            return 0, state
        return 1, state

    def do_read(self, state: State) -> Tuple[int, State]:
        return (0 if state is None else 1), state

    def do_winner(self, state: State) -> Tuple[State, State]:
        return state, state


class PersistentRegisterSpec(DeterministicObjectSpec):
    """Read/write register, recoverable for free.

    Registers need no special construction to survive crash-recovery:
    reads and writes are individually idempotent, and a recovered writer
    repeating a write is indistinguishable from a slow writer.  Provided
    as the explicit consensus-number-1 baseline of the recoverable
    hierarchy, so experiments can name the contract they rely on instead
    of silently assuming it of :class:`~repro.objects.register.
    RegisterSpec`.
    """

    recoverable = True

    def __init__(self, initial: Any = None):
        self.initial = initial

    def initial_state(self) -> Any:
        return self.initial

    def do_read(self, state: Any) -> Tuple[Any, Any]:
        return state, state

    def do_write(self, state: Any, value: Any) -> Tuple[Any, Any]:
        return None, value
