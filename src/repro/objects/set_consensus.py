"""Nondeterministic (m, j)-set-consensus objects.

The classical task-derived object (Borowsky–Gafni): ``propose(v)`` among at
most ``m`` proposals, with at most ``j`` distinct values ever adopted.
Precisely, the object's value is a set of at most ``j`` values plus a count
of proposals (to a maximum of ``m``):

* the first proposal adds its input to the set;
* any later proposal may *nondeterministically* add its input, provided the
  set still has fewer than ``j`` elements;
* each of the first ``m`` proposals nondeterministically returns some
  element of the set;
* every subsequent proposal is misuse ("hangs the system undetectably").

This object is the yardstick the paper measures its deterministic family
against: the target paper (with Chaudhuri–Reiners) characterizes exactly
when (n, k)-set consensus is implementable from (m, j)-set-consensus
objects — see :mod:`repro.core.theorem`.  The whole point of the paper's
contribution is that equal power is achievable *deterministically*.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import ObjectSpec, Outcome

State = Tuple[FrozenSet[Any], int]  # (adopted set, proposal count)


def _canonical(values) -> List[Any]:
    """Stable ordering of heterogeneous response values, so outcome lists
    (and hence explorer branch numbering) are deterministic."""
    return sorted(values, key=lambda v: (type(v).__name__, repr(v)))


class SetConsensusSpec(ObjectSpec):
    """The (m, j)-set-consensus object, nondeterministic.

    Parameters
    ----------
    m:
        Maximum number of answered proposals.
    j:
        Maximum cardinality of the adopted set (``1 <= j < m``; ``j = 1``
        gives the m-bounded consensus object, deterministically packaged in
        :class:`~repro.objects.consensus_object.NConsensusSpec`).
    hang_on_misuse:
        Over-budget proposals block instead of raising.
    """

    deterministic = False

    def __init__(self, m: int, j: int, hang_on_misuse: bool = False):
        if not 1 <= j <= m:
            raise ValueError(f"need 1 <= j <= m, got (m={m}, j={j})")
        self.m = m
        self.j = j
        self.hang_on_misuse = hang_on_misuse

    def initial_state(self) -> State:
        return (frozenset(), 0)

    def op_propose(self, state: State, value: Any) -> List[Outcome]:
        adopted, count = state
        if value is None:
            raise IllegalOperationError("cannot propose None (reserved as ⊥)")
        if count >= self.m:
            raise IllegalOperationError(
                f"({self.m}, {self.j})-set-consensus object exhausted: "
                f"proposal #{count + 1}"
            )
        candidate_sets = []
        if not adopted:
            candidate_sets.append(frozenset([value]))
        else:
            if len(adopted) < self.j and value not in adopted:
                candidate_sets.append(adopted | {value})
            candidate_sets.append(adopted)
        outcomes: List[Outcome] = []
        seen = set()
        for new_set in candidate_sets:
            for response in _canonical(new_set):
                key = (response, new_set)
                if key not in seen:
                    seen.add(key)
                    outcomes.append((response, (new_set, count + 1)))
        return outcomes

    def op_read_count(self, state: State) -> List[Outcome]:
        """Debug/inspection helper (not part of the classical interface)."""
        adopted, count = state
        return [(count, state)]
