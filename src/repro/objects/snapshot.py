"""Atomic snapshot object.

A single-writer atomic snapshot has one segment per process; ``update(i, v)``
writes process i's segment and ``scan()`` returns an instantaneous view of
all segments.  As an *atomic* object it is trivially specified here; the
celebrated result (Afek, Attiya, Dolev, Gafni, Merritt, Shavit 1993) is that
it is wait-free implementable from registers — that implementation lives in
:mod:`repro.algorithms.snapshot_impl` and is checked linearizable against
this spec.

Snapshots have consensus number 1: they add convenience, not
synchronization power, which is why the paper's sub-consensus world can use
them freely.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import IllegalOperationError
from repro.objects.base import DeterministicObjectSpec


class AtomicSnapshotSpec(DeterministicObjectSpec):
    """Single-writer atomic snapshot with ``size`` segments.

    Operations
    ----------
    ``update(i, v)`` -> ``None`` — write segment ``i``.
    ``scan()`` -> tuple of all segments, atomically.

    State: a tuple of length ``size`` (``None`` plays ⊥).
    """

    def __init__(self, size: int, initial: Any = None):
        if size <= 0:
            raise ValueError("snapshot size must be positive")
        self.size = size
        self.initial = initial

    def initial_state(self) -> Tuple[Any, ...]:
        return (self.initial,) * self.size

    def do_update(self, state: Tuple[Any, ...], index: int, value: Any) -> Tuple[Any, Any]:
        if not isinstance(index, int) or not 0 <= index < self.size:
            raise IllegalOperationError(
                f"snapshot segment {index!r} out of range [0, {self.size})"
            )
        return None, state[:index] + (value,) + state[index + 1:]

    def do_scan(self, state: Tuple[Any, ...]) -> Tuple[Any, Any]:
        return state, state
