"""Analysis tools: the proof techniques of the paper, automated.

* :mod:`repro.analysis.linearizability` — Wing–Gong checking of operation
  histories against sequential specifications;
* :mod:`repro.analysis.valency` — bivalence classification and
  critical-configuration search over the execution tree (the FLP/Herlihy
  argument, executable);
* :mod:`repro.analysis.commutativity` — Herlihy-style commute-or-overwrite
  certificates: a sound, automatic proof that an object cannot solve
  2-process consensus, plus witnesses of exactly where stronger objects
  escape the certificate.
"""

from repro.analysis.linearizability import (
    check_linearizable,
    is_linearizable,
    linearization_of,
)
from repro.analysis.valency import (
    ValencyReport,
    classify_valence,
    consensus_counterexample,
    find_critical_configuration,
)
from repro.analysis.commutativity import (
    CommutativityReport,
    commute_or_overwrite_certificate,
    reachable_states,
)
from repro.analysis.wait_freedom import (
    WaitFreedomReport,
    audit_wait_freedom,
    sample_wait_freedom,
)
from repro.analysis.statespace import (
    DeterminismReport,
    StateSpaceSummary,
    state_graph,
    summarize_state_space,
    verify_determinism,
)
from repro.analysis.resilience import ResilienceReport, check_resilience

__all__ = [
    "is_linearizable",
    "check_linearizable",
    "linearization_of",
    "ValencyReport",
    "classify_valence",
    "find_critical_configuration",
    "consensus_counterexample",
    "CommutativityReport",
    "commute_or_overwrite_certificate",
    "reachable_states",
    "WaitFreedomReport",
    "audit_wait_freedom",
    "sample_wait_freedom",
    "DeterminismReport",
    "StateSpaceSummary",
    "state_graph",
    "summarize_state_space",
    "verify_determinism",
    "ResilienceReport",
    "check_resilience",
]
