"""Wait-freedom auditing: bounded step complexity, certified or refuted.

An implementation is wait-free iff every process completes within a
bounded number of its own steps, in *every* execution.  For terminating
protocols on small instances this is directly checkable: exhaust the
schedule tree and take the per-process step maximum.  For protocols that
are **not** wait-free (safe agreement's spin loop, lock-free helping
loops) the auditor instead produces a *starvation witness*: a schedule
prefix past the claimed bound with some process still running.

This distinction — wait-free vs merely non-blocking — is load-bearing in
the paper's world: task solvability is insensitive to it (a non-blocking
solution to a bounded task yields a wait-free one), but object
implementations are compared with the non-blocking relation, which is
exactly how the hierarchy separations are phrased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ExplorationLimitError
from repro.faults.budget import get_active_budget
from repro.faults.verdict import Verdict
from repro.runtime.execution import Execution
from repro.runtime.explorer import Explorer
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.system import SystemSpec


@dataclass
class WaitFreedomReport:
    """Outcome of a wait-freedom audit.

    ``wait_free`` is the boolean answer; ``step_bound`` the measured
    worst-case steps by any single process (valid when wait_free);
    ``witness`` a starvation execution otherwise.  ``exhaustive`` records
    whether the verdict quantified over all schedules or only sampled
    ones.  ``verdict``/``reason`` carry the three-valued refinement: a
    budget-interrupted audit reports ``INCONCLUSIVE`` instead of a
    spurious answer.
    """

    wait_free: bool
    exhaustive: bool
    step_bound: int = 0
    executions_checked: int = 0
    per_process_bounds: Dict[int, int] = field(default_factory=dict)
    witness: Optional[Execution] = None
    verdict: Verdict = Verdict.PROVED
    reason: str = ""

    def summary(self) -> str:
        if self.verdict is Verdict.INCONCLUSIVE:
            return (
                f"INCONCLUSIVE after {self.executions_checked} executions: "
                f"{self.reason}"
            )
        if self.wait_free:
            strength = "all schedules" if self.exhaustive else "sampled schedules"
            return (
                f"wait-free over {self.executions_checked} executions "
                f"({strength}); worst-case {self.step_bound} steps per process"
            )
        return (
            "NOT wait-free: starvation witness of "
            f"{len(self.witness)} steps with a live process remaining"
        )


def _bounds_of(execution: Execution) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for step in execution.steps:
        counts[step.pid] = counts.get(step.pid, 0) + 1
    return counts


def audit_wait_freedom(
    spec: SystemSpec,
    max_depth: int = 200,
) -> WaitFreedomReport:
    """Exhaustive audit: certify wait-freedom with the exact step bound,
    or return a starvation witness.

    A branch exceeding ``max_depth`` with live processes is treated as the
    witness (sound for refutation given a sensible bound: a wait-free
    protocol's executions are uniformly bounded).
    """
    explorer = Explorer(spec, max_depth=max_depth, strict=False)
    report = WaitFreedomReport(wait_free=True, exhaustive=True)
    for execution in explorer.executions():
        report.executions_checked += 1
        live = [
            pid
            for pid, status in execution.statuses.items()
            if status is ProcessStatus.POISED
        ]
        if live:
            return WaitFreedomReport(
                wait_free=False,
                exhaustive=True,
                executions_checked=report.executions_checked,
                witness=execution,
                verdict=Verdict.REFUTED,
                reason="starvation witness found",
            )
        for pid, count in _bounds_of(execution).items():
            report.per_process_bounds[pid] = max(
                report.per_process_bounds.get(pid, 0), count
            )
    report.step_bound = max(report.per_process_bounds.values(), default=0)
    if explorer.interrupted is not None:
        report.verdict = Verdict.INCONCLUSIVE
        report.reason = explorer.interrupted
    return report


def sample_wait_freedom(
    spec: SystemSpec,
    seeds=range(100),
    max_steps: int = 50_000,
) -> WaitFreedomReport:
    """Sampled audit for instances too large to exhaust: many seeded
    adversaries, same verdict structure (non-exhaustive).

    Budget-aware: a run cut short by the active budget is not judged (its
    live processes are an artifact of the interruption) and the remaining
    seeds are skipped, leaving an ``INCONCLUSIVE`` verdict.
    """
    report = WaitFreedomReport(wait_free=True, exhaustive=False)
    budget = get_active_budget()
    for seed in seeds:
        if budget is not None and budget.exhausted_reason() is not None:
            report.verdict = Verdict.INCONCLUSIVE
            report.reason = (
                f"budget exhausted after {report.executions_checked} seeds: "
                f"{budget.exhausted_reason()}"
            )
            report.step_bound = max(report.per_process_bounds.values(), default=0)
            return report
        execution = spec.run(RandomScheduler(seed), max_steps=max_steps)
        if budget is not None and budget.exhausted_reason() is not None:
            report.verdict = Verdict.INCONCLUSIVE
            report.reason = (
                f"budget exhausted during seed {seed}: "
                f"{budget.exhausted_reason()}"
            )
            report.step_bound = max(report.per_process_bounds.values(), default=0)
            return report
        report.executions_checked += 1
        live = [
            pid
            for pid, status in execution.statuses.items()
            if status is ProcessStatus.POISED
        ]
        if live:
            return WaitFreedomReport(
                wait_free=False,
                exhaustive=False,
                executions_checked=report.executions_checked,
                witness=execution,
                verdict=Verdict.REFUTED,
                reason="starvation witness found",
            )
        for pid, count in _bounds_of(execution).items():
            report.per_process_bounds[pid] = max(
                report.per_process_bounds.get(pid, 0), count
            )
    report.step_bound = max(report.per_process_bounds.values(), default=0)
    return report
