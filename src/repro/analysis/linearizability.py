"""Wing–Gong linearizability checking.

Given an operation :class:`~repro.runtime.history.History` (extracted from
an execution's call/return annotations) and the implemented object's
sequential :class:`~repro.objects.base.ObjectSpec`, search for a legal
linearization: a total order of the completed operations (plus any subset
of the pending ones) that

* respects real-time precedence (if a returned before b was invoked, a
  comes first), and
* replays through the sequential specification producing exactly the
  responses the history observed (pending operations may take any
  response, or be dropped entirely).

The search is exponential in the worst case but memoized on
``(linearized-set, object state)`` — the classical Wing–Gong optimization —
which makes the histories produced by the test systems here comfortably
checkable.  Nondeterministic specs are supported: an operation matches if
*some* outcome yields the observed response.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import NotLinearizableError
from repro.objects.base import ObjectSpec
from repro.runtime.history import History, HistoryEvent


def _minimal_events(
    remaining: List[int], events: List[HistoryEvent]
) -> List[int]:
    """Indices in ``remaining`` not preceded by another remaining event."""
    result = []
    for index in remaining:
        event = events[index]
        if all(
            not events[other].precedes(event)
            for other in remaining
            if other != index
        ):
            result.append(index)
    return result


def linearization_of(
    history: History,
    spec: ObjectSpec,
    initial_state: Any = None,
) -> Optional[List[HistoryEvent]]:
    """Return a legal linearization (list of events in order), or ``None``.

    ``initial_state`` overrides ``spec.initial_state()`` when the checked
    region started from a non-initial state.
    """
    events = history.events
    all_indices = frozenset(range(len(events)))
    start_state = spec.initial_state() if initial_state is None else initial_state
    # Memoizes only failures: a success returns up the stack immediately
    # with `order` holding the full linearization, so successful states
    # are never revisited.
    failed: set = set()
    order: List[int] = []

    def search(remaining: FrozenSet[int], state: Any) -> bool:
        if all(events[i].is_pending for i in remaining):
            return True  # pending ops may simply never have taken effect
        key = (remaining, state)
        if key in failed:
            return False
        for index in _minimal_events(sorted(remaining), events):
            event = events[index]
            outcomes = spec.apply(state, event.method, event.args)
            for response, new_state in outcomes:
                if not event.is_pending and response != event.response:
                    continue
                order.append(index)
                if search(remaining - {index}, new_state):
                    return True
                order.pop()
        failed.add(key)
        return False

    if search(all_indices, start_state):
        return [events[i] for i in order]
    return None


def is_linearizable(
    history: History, spec: ObjectSpec, initial_state: Any = None
) -> bool:
    """Boolean form of :func:`linearization_of`."""
    return linearization_of(history, spec, initial_state) is not None


def check_linearizable(
    history: History, spec: ObjectSpec, initial_state: Any = None
) -> List[HistoryEvent]:
    """Like :func:`linearization_of` but raising
    :class:`~repro.errors.NotLinearizableError` (with the offending
    history attached) instead of returning ``None``."""
    result = linearization_of(history, spec, initial_state)
    if result is None:
        raise NotLinearizableError(
            "no legal linearization exists for this history:\n"
            + history.render(),
            history=history,
        )
    return result
