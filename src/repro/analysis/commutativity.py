"""Commute-or-overwrite certificates (Herlihy's consensus-number-1 test).

Herlihy's classification argument: suppose a wait-free 2-process consensus
protocol exists over some objects; walk to a critical configuration; the
two pending steps must touch the same object, and examining how the two
steps compose decides everything.  If for **every** reachable state the
two steps either

* *commute* — both orders produce the same object state, and each step's
  response is independent of the order, or
* *overwrite* — one step's application makes the state (and the other
  step's absence) indistinguishable to a solo run of the other process,

then the processes cannot break the symmetry and the object cannot solve
2-process consensus.  Registers pass this certificate (reads commute,
writes overwrite); any object with consensus number >= 2 must *fail* it
somewhere, and the failing (state, op, op) triple is precisely the
synchronization kernel of the object.

This module enumerates reachable object states (the object alone is a
small state machine — no processes needed) and classifies every pair of
operations from a caller-supplied universe, producing either a certificate
("consensus number 1, by the pairwise argument") or the list of witnesses
where the certificate fails.  The tests run it over the whole object zoo
and check it agrees with the recorded consensus numbers; for the O(n, k)
family the witnesses land exactly on same-group installs — the built-in
group consensus (experiment E3/E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence, Set, Tuple

from repro.objects.base import ObjectSpec

#: An operation instance: (method, args).
OpInstance = Tuple[str, Tuple[Any, ...]]

#: Classifications returned by :func:`classify_adjacent_pair`.
PAIR_COMMUTE = "commute"  # both orders reach the same configuration
PAIR_STATE_DIVERGES = "state-diverges"  # orders reach different configurations
PAIR_SWAP_ILLEGAL = "swap-illegal"  # the swapped order cannot be executed
PAIR_SAME_PROCESS = "same-process"  # program order, not reorderable


def reachable_states(
    spec: ObjectSpec,
    ops: Sequence[OpInstance],
    max_states: int = 5000,
    truncate: bool = False,
) -> List[Any]:
    """BFS over the object's own state graph under the given operation
    universe (all nondeterministic outcomes included).  Misuse branches
    (illegal operations) are skipped — they end the relevant executions.

    Objects with infinite state spaces (counters, queues) exhaust any
    budget; pass ``truncate=True`` to return the explored region instead
    of raising.  A certificate over a truncated region proves nothing —
    it only *locates* failures (the report records the truncation).
    """
    from repro.errors import IllegalOperationError

    initial = spec.initial_state()
    seen: Set[Any] = {initial}
    frontier: List[Any] = [initial]
    order: List[Any] = [initial]
    while frontier:
        state = frontier.pop()
        for method, args in ops:
            try:
                outcomes = spec.apply(state, method, args)
            except IllegalOperationError:
                continue
            for _response, new_state in outcomes:
                if new_state not in seen:
                    if len(seen) >= max_states:
                        if truncate:
                            return order
                        raise MemoryError(
                            f"state budget {max_states} exhausted; trim the "
                            "operation universe or pass truncate=True"
                        )
                    seen.add(new_state)
                    frontier.append(new_state)
                    order.append(new_state)
    return order


@dataclass(frozen=True)
class PairWitness:
    """A (state, op_p, op_q) triple where the pairwise argument fails."""

    state: Any
    op_p: OpInstance
    op_q: OpInstance
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.op_p[0]}{self.op_p[1]} vs {self.op_q[0]}{self.op_q[1]} "
            f"at state {self.state!r}: {self.reason}"
        )


@dataclass
class CommutativityReport:
    """Outcome of the certificate run."""

    certified: bool
    states_checked: int
    pairs_checked: int
    witnesses: List[PairWitness] = field(default_factory=list)
    #: True when the state exploration hit its budget: a positive verdict
    #: then covers only the explored region and proves nothing.
    truncated: bool = False

    def summary(self) -> str:
        verdict = (
            "commute-or-overwrite holds: the object cannot solve 2-process "
            "consensus"
            if self.certified
            else f"certificate fails at {len(self.witnesses)} state/pair "
            "combinations (synchronization power present)"
        )
        region = " [TRUNCATED region — not a proof]" if self.truncated else ""
        return (
            f"{self.states_checked} states x {self.pairs_checked} op pairs: "
            f"{verdict}{region}"
        )


def _apply_all(spec: ObjectSpec, state: Any, op: OpInstance):
    from repro.errors import IllegalOperationError

    try:
        return spec.apply(state, op[0], op[1])
    except IllegalOperationError:
        return None


def _pair_ok(
    spec: ObjectSpec, state: Any, op_p: OpInstance, op_q: OpInstance
) -> Tuple[bool, str]:
    """Classify one (state, op_p, op_q): True if commute or overwrite."""
    outcomes_p = _apply_all(spec, state, op_p)
    outcomes_q = _apply_all(spec, state, op_q)
    if outcomes_p is None or outcomes_q is None:
        return True, "misuse"  # no legal execution reaches this pairing
    # For deterministic objects there is a single outcome each way.
    for resp_p, state_p in outcomes_p:
        for resp_q, state_q in outcomes_q:
            after_pq = _apply_all(spec, state_p, op_q)
            after_qp = _apply_all(spec, state_q, op_p)
            if after_pq is None or after_qp is None:
                continue
            pq_states = {s for _r, s in after_pq}
            qp_states = {s for _r, s in after_qp}
            commute = (
                pq_states == qp_states
                and {r for r, _s in after_qp} == {resp_p}
                and {r for r, _s in after_pq} == {resp_q}
            )
            if commute:
                continue
            # Overwrite: q's step erases p's — the state after p;q equals
            # the state after q alone AND q's own response is unchanged,
            # so only p can tell the difference (or symmetrically).  The
            # response condition is essential: test-and-set "erases" the
            # state but leaks the order through the second return value.
            q_overwrites_p = (
                pq_states == {state_q}
                and {r for r, _s in after_pq} == {resp_q}
            )
            p_overwrites_q = (
                qp_states == {state_p}
                and {r for r, _s in after_qp} == {resp_p}
            )
            if q_overwrites_p or p_overwrites_q:
                continue
            return False, (
                "orders distinguishable: "
                f"p;q -> {sorted(map(repr, pq_states))} vs "
                f"q;p -> {sorted(map(repr, qp_states))}"
            )
    return True, "ok"


def _quiet_replay(spec: Any, decisions: Sequence[Tuple[int, int]]) -> Any:
    """Replay a decision sequence on a fresh system with the ``replaying``
    attribution flag set for the whole run, so audit probes never count
    as on-path work in step telemetry.  Deliberately does **not** charge
    any fault budget: probes must not be able to flip a budget-bounded
    verdict to INCONCLUSIVE."""
    from repro.runtime.execution import CRASH_CHOICE

    system = spec.build()
    system.replaying = True
    try:
        for pid, choice in decisions:
            if choice == CRASH_CHOICE:
                system.crash(pid)
            else:
                system.step(pid, choice)
    finally:
        system.replaying = False
    return system


def classify_adjacent_pair(
    spec: Any, decisions: Sequence[Tuple[int, int]], index: int
) -> str:
    """Execution-level analogue of the pairwise certificate: do the two
    adjacent decisions at ``index`` and ``index + 1`` commute *in this
    context*?

    Where :func:`commute_or_overwrite_certificate` quantifies over an
    object's whole state graph, this classifies one concrete adjacent
    pair of an explored execution by replaying the prefix and executing
    the pair in both orders, then comparing the resulting configuration
    fingerprints (:func:`repro.obs.fingerprint.configuration_fingerprint`,
    which covers object states, responses, and statuses — crashes
    included).  A commuting pair is an interleaving a dynamic
    partial-order reduction would not have needed to explore separately.

    ``spec`` is a :class:`~repro.runtime.system.SystemSpec`;
    ``decisions`` a :attr:`~repro.runtime.execution.Execution.full_decisions`
    sequence (crash decisions participate).  Returns one of
    :data:`PAIR_COMMUTE`, :data:`PAIR_STATE_DIVERGES`,
    :data:`PAIR_SWAP_ILLEGAL`, :data:`PAIR_SAME_PROCESS`.
    """
    from repro.errors import (
        IllegalOperationError,
        ProtocolError,
        SchedulingError,
    )
    from repro.obs.fingerprint import configuration_fingerprint

    first = decisions[index]
    second = decisions[index + 1]
    if first[0] == second[0]:
        return PAIR_SAME_PROCESS
    prefix = list(decisions[:index])
    try:
        swapped = _quiet_replay(spec, prefix + [second, first])
    except (SchedulingError, ProtocolError, IllegalOperationError):
        return PAIR_SWAP_ILLEGAL
    original = _quiet_replay(spec, prefix + [first, second])
    if configuration_fingerprint(original) == configuration_fingerprint(swapped):
        return PAIR_COMMUTE
    return PAIR_STATE_DIVERGES


def commute_or_overwrite_certificate(
    spec: ObjectSpec,
    ops: Sequence[OpInstance],
    max_states: int = 5000,
    max_witnesses: int = 10,
    truncate: bool = False,
) -> CommutativityReport:
    """Run the pairwise certificate over all reachable states.

    ``certified=True`` is a sound proof (relative to the operation
    universe) that the object has consensus number 1; ``certified=False``
    only *locates* potential synchronization power — the witnesses say
    where, and constructive protocols must confirm it (as
    :mod:`repro.algorithms.set_consensus_from_family` does for the family).
    With ``truncate=True`` infinite state spaces are cut at the budget and
    a positive verdict is marked non-probative.
    """
    states = reachable_states(spec, ops, max_states=max_states, truncate=truncate)
    report = CommutativityReport(
        certified=True,
        states_checked=len(states),
        pairs_checked=0,
        truncated=truncate and len(states) >= max_states,
    )
    for state in states:
        for i, op_p in enumerate(ops):
            for op_q in ops[i:]:
                report.pairs_checked += 1
                ok, reason = _pair_ok(spec, state, op_p, op_q)
                if not ok:
                    report.certified = False
                    if len(report.witnesses) < max_witnesses:
                        report.witnesses.append(
                            PairWitness(state, op_p, op_q, reason)
                        )
    return report
