"""State-space analysis of shared objects.

Objects in this library are pure state machines, so their behaviour under
a finite operation universe is a finite (or truncatable) labelled graph.
This module builds that graph explicitly and extracts the facts other
tools consume:

* :func:`state_graph` — the labelled transition graph as a
  :mod:`networkx` MultiDiGraph;
* :func:`verify_determinism` — systematically confirm (or refute) an
  object's ``deterministic`` flag over its reachable states: the paper's
  central dichotomy, made checkable;
* :func:`StateSpaceSummary` — node/edge counts, branching factor, depth,
  sink states (useful when sizing certificate runs and explorer bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.commutativity import OpInstance, reachable_states
from repro.errors import IllegalOperationError
from repro.faults.verdict import Verdict
from repro.obs import events as _obs_events
from repro.objects.base import ObjectSpec

#: networkx refuses ``None`` as a node; states equal to ``None`` are
#: represented by this sentinel in graphs (see :func:`node_for`).
NONE_STATE = ("<none-state>",)


def node_for(state: Any) -> Any:
    """Graph node representing ``state`` (handles the ``None`` state)."""
    return NONE_STATE if state is None else state


def state_graph(
    spec: ObjectSpec,
    ops: Sequence[OpInstance],
    max_states: int = 5000,
    truncate: bool = False,
) -> nx.MultiDiGraph:
    """Labelled transition graph: nodes are reachable states, one edge per
    (operation, outcome) with ``op``/``response`` attributes.  Misuse
    branches are omitted (they end executions)."""
    states = reachable_states(spec, ops, max_states=max_states, truncate=truncate)
    if _obs_events.is_enabled():
        _obs_events.emit(
            "states_visited", object=type(spec).__name__, states=len(states)
        )
    known = set(map(node_for, states))
    graph = nx.MultiDiGraph()
    for state in states:
        graph.add_node(node_for(state))
    for state in states:
        for method, args in ops:
            try:
                outcomes = spec.apply(state, method, args)
            except IllegalOperationError:
                continue
            for response, new_state in outcomes:
                if node_for(new_state) in known:
                    graph.add_edge(
                        node_for(state),
                        node_for(new_state),
                        op=(method, args),
                        response=response,
                    )
    return graph


@dataclass
class DeterminismReport:
    """Verdict of :func:`verify_determinism`.

    ``truncated`` is set when the reachable-state enumeration was cut off
    at ``max_states``; a clean-but-truncated check is only evidence, not
    a proof, so its ``verdict`` is ``INCONCLUSIVE`` (a found witness is
    still ``REFUTED`` — refutation is sound under truncation).
    """

    deterministic: bool
    states_checked: int
    #: First (state, op) with multiple outcomes, if any.
    witness: Optional[Tuple[Any, OpInstance]] = None
    truncated: bool = False

    @property
    def verdict(self) -> Verdict:
        if not self.deterministic:
            return Verdict.REFUTED
        if self.truncated:
            return Verdict.INCONCLUSIVE
        return Verdict.PROVED

    def summary(self) -> str:
        if self.deterministic:
            qualifier = (
                " (truncated — not exhaustive)" if self.truncated else ""
            )
            return (
                f"deterministic over {self.states_checked} reachable "
                f"states{qualifier}"
            )
        state, (method, args) = self.witness
        return (
            f"nondeterministic: {method}{args} has multiple outcomes at "
            f"state {state!r}"
        )


def verify_determinism(
    spec: ObjectSpec,
    ops: Sequence[OpInstance],
    max_states: int = 5000,
    truncate: bool = False,
) -> DeterminismReport:
    """Check every reachable (state, operation) pair for single-outcome
    behaviour — the executable meaning of 'deterministic object'."""
    states = reachable_states(spec, ops, max_states=max_states, truncate=truncate)
    truncated = truncate and len(states) >= max_states
    if _obs_events.is_enabled():
        _obs_events.emit(
            "states_visited", object=type(spec).__name__, states=len(states)
        )
    for state in states:
        for op in ops:
            method, args = op
            try:
                outcomes = spec.apply(state, method, args)
            except IllegalOperationError:
                continue
            if len(outcomes) > 1:
                return DeterminismReport(
                    deterministic=False,
                    states_checked=len(states),
                    witness=(state, op),
                    truncated=truncated,
                )
    return DeterminismReport(
        deterministic=True, states_checked=len(states), truncated=truncated
    )


@dataclass
class StateSpaceSummary:
    """Size/shape facts about an object's reachable state space."""

    states: int
    transitions: int
    max_branching: int
    depth: int
    sinks: int

    def __str__(self) -> str:
        return (
            f"{self.states} states, {self.transitions} transitions, "
            f"max branching {self.max_branching}, depth {self.depth}, "
            f"{self.sinks} sinks"
        )


def summarize_state_space(
    spec: ObjectSpec,
    ops: Sequence[OpInstance],
    max_states: int = 5000,
    truncate: bool = False,
) -> StateSpaceSummary:
    """Compute a :class:`StateSpaceSummary` for the object under ``ops``."""
    graph = state_graph(spec, ops, max_states=max_states, truncate=truncate)
    initial = node_for(spec.initial_state())
    lengths = nx.single_source_shortest_path_length(graph, initial)
    sinks = sum(1 for node in graph.nodes if graph.out_degree(node) == 0)
    max_branching = max(
        (graph.out_degree(node) for node in graph.nodes), default=0
    )
    return StateSpaceSummary(
        states=graph.number_of_nodes(),
        transitions=graph.number_of_edges(),
        max_branching=max_branching,
        depth=max(lengths.values(), default=0),
        sinks=sinks,
    )
