"""Crash-resilience analysis.

Wait-freedom is (n-1)-resilience: survivors must terminate correctly no
matter how many peers stop forever.  The explorer makes the quantifier
finite: for a crash set S, the executions in which S never takes a step
are exactly the executions of the system with S's branches pruned.  This
module enumerates all crash sets up to size f and model-checks that

* every surviving process terminates (no starvation caused by the dead),
* the surviving outputs satisfy the task (with *all* participants'
  inputs still legal decision fodder — crashed processes participated).

Protocols with helping/waiting structure fail visibly here: safe
agreement is the canonical example (a process dead in its unsafe section
starves everyone) — the tests pin both directions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import TaskViolationError
from repro.faults.verdict import Verdict
from repro.runtime.execution import Execution
from repro.runtime.explorer import Explorer
from repro.runtime.process import ProcessStatus
from repro.runtime.system import SystemSpec
from repro.tasks.task import Task


@dataclass
class ResilienceReport:
    """Outcome of a resilience audit.

    ``resilient`` holds iff for every crash set checked, every execution
    was clean.  ``failures`` lists (crash set, reason, witness) triples.
    ``verdict`` refines the boolean: ``INCONCLUSIVE`` means the audit was
    cut short by a budget before covering every crash set/timing (found
    failures remain sound).  ``mode`` records which fault model was
    quantified over — ``"initial"`` (crash sets dead from the start) or
    ``"timing"`` (every crash point along every schedule).
    """

    resilient: bool
    max_failures: int
    crash_sets_checked: int = 0
    executions_checked: int = 0
    failures: List[Tuple[FrozenSet[int], str, Optional[Execution]]] = field(
        default_factory=list
    )
    verdict: Verdict = Verdict.PROVED
    mode: str = "initial"
    inconclusive_reason: str = ""

    def summary(self) -> str:
        if self.verdict is Verdict.INCONCLUSIVE and self.resilient:
            return (
                f"INCONCLUSIVE after {self.crash_sets_checked} crash sets x "
                f"{self.executions_checked} executions: "
                f"{self.inconclusive_reason}"
            )
        if self.resilient:
            return (
                f"{self.max_failures}-resilient ({self.mode} crashes): "
                f"{self.crash_sets_checked} crash sets x "
                f"{self.executions_checked} executions clean"
            )
        crash_set, reason, _witness = self.failures[0]
        return (
            f"NOT {self.max_failures}-resilient: crash set "
            f"{sorted(crash_set)} -> {reason}"
        )


def _frozen_pid_filter(dead: FrozenSet[int]):
    def pid_filter(system, enabled):
        return [pid for pid in enabled if pid not in dead]

    return pid_filter


def check_resilience(
    spec: SystemSpec,
    task: Task,
    inputs: Dict[int, Any],
    max_failures: int,
    max_depth: int = 200,
    stop_at_first_failure: bool = True,
    mode: str = "initial",
) -> ResilienceReport:
    """Exhaustive audit over crashes of up to ``max_failures`` processes.

    Two fault models (``mode``):

    * ``"initial"`` — every crash set of size <= ``max_failures``, dead
      from the start: one pruned exploration per set.  For the
      prefix-closed tasks in this library this dominates mid-run crashes
      (any mid-run crash execution is a full execution of a smaller
      enabled set extended with the victim's own prefix steps), so it is
      the cheap default.
    * ``"timing"`` — crash *decisions* are interleaved with scheduling
      decisions by the explorer (``max_crashes``), so every crash point
      along every schedule is enumerated — the exhaustive model, needed
      when a protocol's vulnerability window only opens mid-operation
      (safe agreement's unsafe section is the canonical example).

    Budget-aware: an exhausted budget stops the audit and downgrades the
    verdict to ``INCONCLUSIVE`` (recorded failures are still sound).
    """
    n = spec.n_processes
    if not 0 <= max_failures < n:
        raise ValueError("need 0 <= max_failures < n_processes")
    if mode not in ("initial", "timing"):
        raise ValueError(f"unknown resilience mode {mode!r}")
    report = ResilienceReport(
        resilient=True, max_failures=max_failures, mode=mode
    )
    if mode == "timing":
        return _check_crash_timings(
            spec, task, inputs, max_depth, stop_at_first_failure, report
        )
    for size in range(max_failures + 1):
        for dead in itertools.combinations(range(n), size):
            dead_set = frozenset(dead)
            report.crash_sets_checked += 1
            explorer = Explorer(
                spec,
                max_depth=max_depth,
                strict=False,
                pid_filter=_frozen_pid_filter(dead_set),
            )
            for execution in explorer.executions():
                report.executions_checked += 1
                problem = _validate(task, inputs, execution, dead_set)
                if problem is not None:
                    report.resilient = False
                    report.verdict = Verdict.REFUTED
                    report.failures.append((dead_set, problem, execution))
                    if stop_at_first_failure:
                        return report
                    break
            if explorer.interrupted is not None:
                report.verdict = Verdict.INCONCLUSIVE
                report.inconclusive_reason = explorer.interrupted
                return report
    return report


def _check_crash_timings(
    spec: SystemSpec,
    task: Task,
    inputs: Dict[int, Any],
    max_depth: int,
    stop_at_first_failure: bool,
    report: ResilienceReport,
) -> ResilienceReport:
    """Timing mode: one exploration with crash branching; the dead set of
    each execution is whatever the branch actually crashed."""
    explorer = Explorer(
        spec,
        max_depth=max_depth,
        strict=False,
        max_crashes=report.max_failures,
    )
    seen_sets: set = set()
    for execution in explorer.executions():
        report.executions_checked += 1
        dead_set = frozenset(execution.crashed_pids())
        if dead_set not in seen_sets:
            seen_sets.add(dead_set)
            report.crash_sets_checked += 1
        problem = _validate(task, inputs, execution, dead_set)
        if problem is not None:
            report.resilient = False
            report.verdict = Verdict.REFUTED
            report.failures.append((dead_set, problem, execution))
            if stop_at_first_failure:
                return report
    if explorer.interrupted is not None:
        report.verdict = Verdict.INCONCLUSIVE
        report.inconclusive_reason = explorer.interrupted
    return report


def _validate(
    task: Task,
    inputs: Dict[int, Any],
    execution: Execution,
    dead: FrozenSet[int],
) -> Optional[str]:
    for pid, status in execution.statuses.items():
        if pid in dead:
            continue
        if status not in (ProcessStatus.DONE,):
            return (
                f"survivor p{pid} ended {status.value}: starved by the "
                f"crash set"
            )
    try:
        task.validate(inputs, execution.outputs)
    except TaskViolationError as violation:
        return str(violation)
    return None
