"""Valency analysis: the FLP/Herlihy argument, executable.

For an *agreement* system (every process returns a decision), define the
*valence* of a configuration as the set of values decidable in some
extension.  A configuration is **bivalent** if its valence has at least
two values, **critical** if it is bivalent but every single step leads to
a univalent configuration.  The impossibility arguments in this line of
work (the paper's "weaker than (n+1)-consensus" direction, the 2-process
register case of FLP/Herlihy) all walk to a critical configuration and
derive a contradiction from the pending operations there.

This module computes valences exactly (by exhausting the execution tree),
finds critical configurations, and — the practical tool — produces
concrete counterexample executions for any protocol that *claims* to solve
consensus but cannot: because wait-free consensus over too-weak objects is
impossible, every concrete protocol must either disagree, violate
validity, or run forever under some schedule, and the explorer finds which.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ExplorationLimitError
from repro.obs import events as _obs_events
from repro.runtime.execution import Execution
from repro.runtime.explorer import Explorer
from repro.runtime.process import ProcessStatus
from repro.runtime.system import System, SystemSpec

Decision = Tuple[int, int]


@dataclass
class ValencyReport:
    """Valence of one configuration (identified by its decision prefix)."""

    prefix: Tuple[Decision, ...]
    valence: FrozenSet[Any]
    #: Valence of each enabled single step from this configuration.
    children: Dict[Decision, FrozenSet[Any]] = field(default_factory=dict)

    @property
    def bivalent(self) -> bool:
        return len(self.valence) >= 2

    @property
    def critical(self) -> bool:
        return self.bivalent and all(len(v) == 1 for v in self.children.values())


def _decision_of(execution: Execution) -> FrozenSet[Any]:
    """Decisions reached in a maximal execution (usually a single value
    for a consensus protocol)."""
    return frozenset(execution.outputs.values())


def classify_valence(
    spec: SystemSpec,
    prefix: Sequence[Decision] = (),
    max_depth: int = 60,
) -> ValencyReport:
    """Exact valence of the configuration reached by ``prefix``, plus the
    valences of all its one-step successors.

    Requires the protocol to terminate in every execution within
    ``max_depth`` (raises :class:`~repro.errors.ExplorationLimitError`
    otherwise) — valence is not well defined for non-terminating branches.
    """
    base = list(prefix)
    valence = _subtree_valence(spec, base, max_depth)
    report = ValencyReport(prefix=tuple(base), valence=valence)
    system = spec.replay(base)
    for pid in system.enabled_pids():
        for choice in range(max(1, len(system.outcomes_for(pid)))):
            step = (pid, choice)
            report.children[step] = _subtree_valence(spec, base + [step], max_depth)
    return report


def _subtree_valence(
    spec: SystemSpec, prefix: List[Decision], max_depth: int
) -> FrozenSet[Any]:
    explorer = _PrefixedExplorer(spec, prefix, max_depth)
    values: set = set()
    for execution in explorer.executions():
        values |= _decision_of(execution)
    if explorer.interrupted is not None:
        # Valence is a property of the *complete* subtree; a partial
        # enumeration cannot certify it, so degrade loudly.
        raise ExplorationLimitError(
            f"valency exploration interrupted: {explorer.interrupted}"
        )
    if _obs_events.is_enabled():
        _obs_events.emit(
            "valency_subtree",
            prefix_len=len(prefix),
            executions=explorer.stats.executions,
            valence=len(values),
        )
    return frozenset(values)


class _PrefixedExplorer(Explorer):
    """Explorer rooted at a decision prefix instead of the initial
    configuration."""

    def __init__(self, spec: SystemSpec, prefix: List[Decision], max_depth: int):
        super().__init__(spec, max_depth=max_depth, strict=True)
        self._prefix = list(prefix)

    def executions(self):
        yield from self._walk(list(self._prefix))


def find_critical_configuration(
    spec: SystemSpec,
    max_depth: int = 60,
) -> Optional[ValencyReport]:
    """Walk from the initial configuration, always stepping into a
    bivalent child, until reaching a critical configuration.

    Returns its report, or ``None`` if the initial configuration is
    already univalent (the protocol ignores its schedule).  This is the
    textbook existence argument made concrete: from a bivalent start,
    following bivalent children either loops forever (impossible for a
    terminating protocol) or hits a critical configuration.
    """
    prefix: List[Decision] = []
    report = classify_valence(spec, prefix, max_depth)
    if not report.bivalent:
        return None
    while True:
        if report.critical:
            return report
        advanced = False
        for step, valence in report.children.items():
            if len(valence) >= 2:
                prefix.append(step)
                report = classify_valence(spec, prefix, max_depth)
                advanced = True
                break
        if not advanced:
            raise AssertionError(
                "bivalent configuration with no bivalent child must be "
                "critical; classification is inconsistent"
            )


def consensus_counterexample(
    spec: SystemSpec,
    inputs: Dict[int, Any],
    max_depth: int = 80,
) -> Optional[Execution]:
    """Find an execution in which the protocol fails consensus: processes
    disagree, decide a non-input, or fail to terminate.

    Returns a replayable witness, or ``None`` if the protocol genuinely
    solves consensus for these inputs under every schedule.  Non-
    termination shows up as an :class:`ExplorationLimitError`, which is
    converted into the truncated witness execution.
    """
    legal = set(inputs.values())

    def ok(execution: Execution) -> bool:
        if any(
            status not in (ProcessStatus.DONE, ProcessStatus.CRASHED)
            for status in execution.statuses.values()
        ):
            return False
        decisions = set(execution.outputs.values())
        return len(decisions) <= 1 and decisions <= legal

    explorer = Explorer(spec, max_depth=max_depth, strict=False)
    for execution in explorer.executions():
        if not ok(execution):
            return execution
    return None


def consensus_verdict(
    spec: SystemSpec,
    inputs: Dict[int, Any],
    max_depth: int = 80,
) -> Tuple["Verdict", Optional[Execution], str]:
    """Three-valued form of :func:`consensus_counterexample`.

    ``REFUTED`` with a witness when some execution fails consensus;
    ``PROVED`` when the full enumeration is clean; ``INCONCLUSIVE`` when
    the budget ran out first (see :mod:`repro.faults.verdict`).
    """
    from repro.faults.verdict import Verdict

    legal = set(inputs.values())

    def ok(execution: Execution) -> bool:
        if any(
            status not in (ProcessStatus.DONE, ProcessStatus.CRASHED)
            for status in execution.statuses.values()
        ):
            return False
        decisions = set(execution.outputs.values())
        return len(decisions) <= 1 and decisions <= legal

    explorer = Explorer(spec, max_depth=max_depth, strict=False)
    verdict, witness, reason = explorer.check_verdict(ok)
    if verdict is Verdict.REFUTED:
        reason = "execution fails consensus (disagreement, non-input, or hang)"
    return verdict, witness, reason
