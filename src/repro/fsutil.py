"""Small filesystem helpers shared by every artifact writer.

Every file the toolchain produces on request — ``--trace-out`` event
streams, ``--metrics-out`` expositions, ``--html`` reports, ``--flame``
stacks, explorer checkpoints, the run ledger — accepts a user-supplied
path.  When that path points into a directory that does not exist yet
(``results/2026-08/run.jsonl``), a bare ``open(..., "w")`` fails with
``FileNotFoundError`` after the run already did its work.  All writers
funnel through :func:`ensure_parent` so the directory is created first.
"""

from __future__ import annotations

import os


def ensure_parent(path: str) -> str:
    """Create the parent directory of ``path`` if missing; return ``path``.

    A plain filename (no directory component) is returned untouched.
    Creation is ``exist_ok`` so concurrent writers cannot race each other
    into an error.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    return path
