"""The three-valued verdict of a budgeted check.

Exhaustive checks used to be two-valued (held everywhere / counterexample)
with resource exhaustion surfacing as an exception — which turned hours of
exploration into a traceback.  A :class:`Verdict` keeps the refutation
semantics sound under partial exploration:

* ``PROVED`` — the check ran to completion and the property held in every
  execution it quantified over.  (For sampled checks this is "held in
  every sampled execution"; exhaustiveness is reported separately.)
* ``REFUTED`` — a concrete counterexample was found.  A refutation found
  before a budget ran out is still a refutation: counterexamples are
  closed under extension of the search.
* ``INCONCLUSIVE`` — the check was cut short (deadline, step budget,
  truncated state space, interrupt) before either of the above.  The
  accompanying ``reason`` says why, and partial statistics remain valid.
* ``ERROR`` — the check itself crashed.  Used by the experiment suite to
  isolate a broken experiment into one row instead of aborting the run.
"""

from __future__ import annotations

import enum


class Verdict(enum.Enum):
    """Outcome of a check that may have been cut short."""

    PROVED = "proved"
    REFUTED = "refuted"
    INCONCLUSIVE = "inconclusive"
    ERROR = "error"

    @property
    def symbol(self) -> str:
        """One-character rendering used by report tables."""
        return _SYMBOLS[self]

    @property
    def conclusive(self) -> bool:
        """True when the verdict settles the claim either way."""
        return self in (Verdict.PROVED, Verdict.REFUTED)

    @classmethod
    def from_string(cls, value: str) -> "Verdict":
        """Parse the serialized (``.value``) form back into a verdict."""
        for member in cls:
            if member.value == value:
                return member
        raise ValueError(f"unknown verdict {value!r}")


_SYMBOLS = {
    Verdict.PROVED: "✓",
    Verdict.REFUTED: "✗",
    Verdict.INCONCLUSIVE: "?",
    Verdict.ERROR: "E",
}

#: Severity order used when one exit code must summarize many rows:
#: a refutation outranks an error outranks an open question.
SEVERITY = (Verdict.REFUTED, Verdict.ERROR, Verdict.INCONCLUSIVE, Verdict.PROVED)


def worst(verdicts) -> Verdict:
    """The most severe verdict in ``verdicts`` (PROVED when empty)."""
    seen = set(verdicts)
    for verdict in SEVERITY:
        if verdict in seen:
            return verdict
    return Verdict.PROVED
