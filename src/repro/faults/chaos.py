"""ChaosScheduler: a seeded probabilistic crash-and-stall adversary.

Exhaustive crash-timing exploration (``Explorer(max_crashes=f)``) is the
gold standard, but its tree grows with every decision point.  For systems
too large to enumerate, the chaos adversary *samples* the same space:

* **crashes** — at each scheduling decision, with probability
  ``crash_probability``, crash-stop a random enabled process (bounded by
  ``max_crashes``, optionally restricted to ``crashable_pids``);
* **adversarial stalls** — with probability ``stall_probability``, freeze
  a random enabled process for a geometric burst of decisions (up to
  ``max_stall``), starving it the way a real adversary starves the
  process whose progress would be most useful;
* **recoveries** — with probability ``recover_probability`` (default 0.0,
  i.e. pure crash-stop), revive a random crashed process with amnesia
  (bounded by ``max_recoveries``), sampling the crash-recovery adversary
  that ``Explorer(max_recoveries=r)`` enumerates exhaustively.

Crash bookkeeping is derived from the *system* (crashed statuses), never
from scheduler-local mutable state, so one instance drives many fresh
systems without the silent-reuse bug the old ``CrashingScheduler`` had.
Like :class:`~repro.runtime.scheduler.RandomScheduler`, the RNG stream
itself advances across runs — construct a fresh instance with the same
seed to reproduce a run exactly, and archive :meth:`describe` (full
parameter provenance) alongside counterexample traces so they replay.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import Scheduler


class ChaosScheduler(Scheduler):
    """Probabilistic crash + stall adversary, reproducible from a seed."""

    def __init__(
        self,
        seed: int = 0,
        crash_probability: float = 0.02,
        stall_probability: float = 0.05,
        max_crashes: int = 1,
        max_stall: int = 8,
        crashable_pids: Optional[Iterable[int]] = None,
        recover_probability: float = 0.0,
        max_recoveries: int = 1,
    ):
        if not 0.0 <= crash_probability <= 1.0:
            raise ValueError("crash_probability must be in [0, 1]")
        if not 0.0 <= stall_probability <= 1.0:
            raise ValueError("stall_probability must be in [0, 1]")
        if not 0.0 <= recover_probability <= 1.0:
            raise ValueError("recover_probability must be in [0, 1]")
        if max_stall < 1:
            raise ValueError("max_stall must be >= 1")
        self.seed = seed
        self.crash_probability = crash_probability
        self.stall_probability = stall_probability
        self.max_crashes = max_crashes
        self.max_stall = max_stall
        self.crashable_pids = (
            None if crashable_pids is None else frozenset(crashable_pids)
        )
        self.recover_probability = recover_probability
        self.max_recoveries = max_recoveries
        self._rng = random.Random(seed)
        #: pid -> decisions the process remains frozen for.
        self._stalled: Dict[int, int] = {}

    def describe(self) -> str:
        crashable = (
            ""
            if self.crashable_pids is None
            else f", crashable={sorted(self.crashable_pids)}"
        )
        # Pure crash-stop instances keep their historical provenance
        # string, so traces archived before the recovery model replay
        # against an unchanged description.
        recovery = (
            f", recover_p={self.recover_probability:g}, "
            f"max_recoveries={self.max_recoveries}"
            if self.recover_probability
            else ""
        )
        return (
            f"{type(self).__name__}(seed={self.seed}, "
            f"crash_p={self.crash_probability:g}, "
            f"stall_p={self.stall_probability:g}, "
            f"max_crashes={self.max_crashes}, "
            f"max_stall={self.max_stall}{crashable}{recovery})"
        )

    def next_pid(self, system) -> Optional[int]:
        # Recovery roll first: revive a random crashed process with
        # amnesia, so even a fully-crashed system can come back.  Gated
        # on the probability so the default (0.0, pure crash-stop)
        # consumes no RNG — seeded runs from before the recovery model
        # reproduce bit-for-bit.
        if self.recover_probability:
            crashed_pids = [
                process.pid
                for process in system.processes
                if process.status is ProcessStatus.CRASHED
            ]
            if (
                crashed_pids
                and len(system.trace.recoveries) < self.max_recoveries
                and self._rng.random() < self.recover_probability
            ):
                system.recover(self._rng.choice(crashed_pids))
        enabled = system.enabled_pids()
        if not enabled:
            return None
        # Crash roll: bounded by live system state, not scheduler state.
        crashed = sum(
            1
            for process in system.processes
            if process.status is ProcessStatus.CRASHED
        )
        if crashed < self.max_crashes and self._rng.random() < self.crash_probability:
            victims = [
                pid
                for pid in enabled
                if self.crashable_pids is None or pid in self.crashable_pids
            ]
            if victims:
                system.crash(self._rng.choice(victims))
                enabled = system.enabled_pids()
                if not enabled:
                    return None
        # Stall roll: freeze one enabled process for a burst of decisions.
        self._decay_stalls()
        if self._rng.random() < self.stall_probability:
            frozen = self._rng.choice(enabled)
            self._stalled[frozen] = 1 + self._rng.randrange(self.max_stall)
        runnable = [pid for pid in enabled if self._stalled.get(pid, 0) == 0]
        # Stalls starve, never deadlock: with everyone frozen, ignore them.
        return self._rng.choice(runnable or enabled)

    def choose(self, system, pid: int, n_outcomes: int) -> int:
        return self._rng.randrange(n_outcomes)

    def _decay_stalls(self) -> None:
        for pid in list(self._stalled):
            self._stalled[pid] -= 1
            if self._stalled[pid] <= 0:
                del self._stalled[pid]
