"""Exploration budgets: wall-clock deadlines and step ceilings.

A :class:`Budget` is a shared, cumulative resource meter.  Every layer
that executes simulator steps charges it (the explorer's replay loop,
``System.run``'s step loop, the sampled-schedule checkers), and every
layer that can stop early consults :meth:`Budget.exhausted_reason` —
which is *sticky*: once a budget is exhausted it stays exhausted, so a
single reason string propagates consistently through nested checks.

Budgets are usually installed process-wide with :func:`set_active_budget`
(or the :func:`active_budget` context manager): the CLI's ``--deadline``
and ``--max-steps`` flags create one budget, and every exploration the
command triggers — however deeply nested — degrades to an
``INCONCLUSIVE`` verdict instead of raising when it runs out.

The first time a budget trips it emits a single ``budget_exhausted``
event (kind = ``deadline`` or ``steps``) through :mod:`repro.obs`, so
degradation is visible in traces, the metrics digest, the HTML report,
and the Prometheus exposition.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.obs import events as _obs_events


class Budget:
    """Cumulative deadline / step budget shared by nested explorations.

    Parameters
    ----------
    deadline:
        Wall-clock allowance in seconds, measured from :meth:`start`
        (which the first consumer calls implicitly).  ``None`` = no limit.
    max_steps:
        Ceiling on simulator steps charged via :meth:`charge_steps`,
        cumulative across every exploration sharing the budget.
        ``None`` = no limit.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_steps: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline = deadline
        self.max_steps = max_steps
        self._clock = clock
        self._started_at: Optional[float] = None
        self.steps_charged = 0
        self._reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Start the wall clock (idempotent; the first consumer calls it)."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    def charge_steps(self, n: int) -> None:
        """Record ``n`` executed simulator steps against the budget."""
        self.steps_charged += n

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason() is not None

    def exhausted_reason(self) -> Optional[str]:
        """Why the budget is exhausted, or ``None`` while it is not.

        Sticky: the first reason observed is the reason forever, so every
        nested check that was cut short reports the same cause.  Emits a
        single ``budget_exhausted`` event on the transition.
        """
        if self._reason is not None:
            return self._reason
        self.start()
        if self.deadline is not None:
            elapsed = self.elapsed
            if elapsed >= self.deadline:
                self._trip(
                    f"deadline {self.deadline:g}s exceeded "
                    f"({elapsed:.2f}s elapsed)",
                    kind="deadline",
                )
                return self._reason
        if self.max_steps is not None and self.steps_charged >= self.max_steps:
            self._trip(
                f"step budget {self.max_steps} exhausted "
                f"({self.steps_charged} steps executed)",
                kind="steps",
            )
        return self._reason

    def describe(self) -> str:
        """Provenance string (recorded in checkpoints and reports)."""
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        return f"Budget({', '.join(parts) or 'unlimited'})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _trip(self, reason: str, kind: str) -> None:
        self._reason = reason
        if _obs_events.is_enabled():
            _obs_events.emit(
                "budget_exhausted",
                kind=kind,
                reason=reason,
                steps=self.steps_charged,
                elapsed=round(self.elapsed, 6),
            )


_active: Optional[Budget] = None


def get_active_budget() -> Optional[Budget]:
    """The process-wide budget installed by :func:`set_active_budget`."""
    return _active


def set_active_budget(budget: Optional[Budget]) -> Optional[Budget]:
    """Install ``budget`` as the process-wide default; returns the
    previous one so callers can restore it."""
    global _active
    previous = _active
    _active = budget
    return previous


@contextmanager
def active_budget(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` for the duration of a ``with`` block."""
    previous = set_active_budget(budget)
    try:
        yield budget
    finally:
        set_active_budget(previous)
