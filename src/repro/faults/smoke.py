"""Fault-injection smoke run: ``python -m repro.faults.smoke``.

A small, deterministic end-to-end exercise of the fault subsystem, used
by CI and usable locally as a quick health check:

1. the E7 BG-simulation crash sweep under a fixed-seed
   :class:`~repro.faults.chaos.ChaosScheduler` (containment must hold in
   every run);
2. an exhaustive crash-timing enumeration with ``Explorer(max_crashes=1)``
   writing a checkpoint file (uploaded as a CI artifact), verifying the
   checkpoint reads back complete;
3. a scripted crash-then-recover run of the announce election: the TAS
   winner dies before announcing and comes back amnesiac, the
   zero-leader anomaly must reproduce exactly, and the metrics registry
   must account both the crash (``faults_injected``) and the revival
   (``recoveries_total``).

Exit code 0 on success, 1 on a containment/recovery violation, 2 on a
checkpoint round-trip problem.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.algorithms.bg_simulation import simulation_spec, write_scan_protocol
from repro.algorithms.election import announce_election_spec
from repro.faults.chaos import ChaosScheduler
from repro.faults.checkpoint import read_checkpoint
from repro.obs.metrics import MetricsRegistry
from repro.runtime.execution import CRASH_CHOICE, RECOVER_CHOICE
from repro.runtime.explorer import Explorer
from repro.runtime.scheduler import ScriptedScheduler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.faults.smoke",
        description="deterministic fault-injection smoke run (E7 + checkpoint)",
    )
    parser.add_argument("--seed", type=int, default=7, help="chaos base seed")
    parser.add_argument("--runs", type=int, default=10, help="chaos runs")
    parser.add_argument(
        "--checkpoint", metavar="FILE",
        default=os.path.join(".repro", "fault-smoke-checkpoint.jsonl"),
        help="checkpoint file written by the exhaustive phase "
        "(default .repro/fault-smoke-checkpoint.jsonl — under the repro "
        "scratch dir, not the CWD)",
    )
    parser.add_argument(
        "--serve", nargs="?", const=0, type=int, default=None, metavar="PORT",
        help="serve live /status //metrics //events on 127.0.0.1 while "
        "the smoke run executes (ephemeral port when omitted)",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    live = None
    if args.serve is not None:
        from repro.obs.live import serve as serve_live

        live = serve_live(
            command="faults.smoke",
            argv=list(argv or sys.argv[1:]),
            port=args.serve,
        )
        print(f"live telemetry: {live.url('/status')}", file=sys.stderr)
    try:
        return _run(args)
    finally:
        if live is not None:
            live.close()


def _run(args) -> int:
    protocol = write_scan_protocol(3)

    # Phase 1: seeded chaos sweep — random scheduling, stalls, and
    # mid-run crashes of simulator 0; containment must hold every time.
    crashes = 0
    for offset in range(args.runs):
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        scheduler = ChaosScheduler(
            seed=args.seed + offset,
            crash_probability=0.01,
            stall_probability=0.05,
            max_crashes=1,
            crashable_pids={0},
        )
        execution = spec.run(scheduler, max_steps=40_000)
        merged = {}
        for result in execution.outputs.values():
            merged.update(result)
        blocked = 3 - len(merged)
        crashes += len(execution.crashed_pids())
        if blocked > 1:
            print(
                f"FAIL: containment violated under {scheduler.describe()}: "
                f"{blocked} simulated processes blocked"
            )
            return 1
    print(
        f"chaos sweep: {args.runs} runs, {crashes} crashes injected, "
        "containment held"
    )

    # Phase 2: exhaustive crash timings along a pinned fair schedule,
    # with a checkpoint written and verified complete.
    def pinned(system, enabled):
        if not enabled:
            return enabled
        return [sorted(enabled)[len(system.trace.steps) % len(enabled)]]

    explorer = Explorer(
        simulation_spec(protocol, 2, ["a", "b", "c"]),
        max_depth=200,
        strict=False,
        pid_filter=pinned,
        max_crashes=1,
        crashable_pids={0},
        checkpoint_path=args.checkpoint,
        checkpoint_every=10,
    )
    worst = 0
    for execution in explorer.executions():
        merged = {}
        for result in execution.outputs.values():
            merged.update(result)
        worst = max(worst, 3 - len(merged))
    if worst > 1:
        print(f"FAIL: exhaustive timing found {worst} blocked processes")
        return 1
    checkpoint = read_checkpoint(args.checkpoint)
    if not checkpoint.done:
        print(
            f"FAIL: checkpoint {args.checkpoint} not marked complete "
            f"({len(checkpoint.frontier)} prefixes left)"
        )
        return 2
    if checkpoint.executions != explorer.total_executions:
        print(
            f"FAIL: checkpoint records {checkpoint.executions} executions, "
            f"explorer reports {explorer.total_executions}"
        )
        return 2
    print(
        f"exhaustive timings: {explorer.total_executions} executions, "
        f"{explorer.stats.faults_injected} crash branches, worst blocked "
        f"{worst}; checkpoint {args.checkpoint} complete"
    )

    # Phase 3: crash-then-recover — the announce election's TAS winner
    # dies in the window before announcing and comes back amnesiac.  The
    # zero-leader anomaly must reproduce deterministically, and the
    # metrics registry must see both fault events.
    registry = MetricsRegistry()
    registry.install()
    try:
        spec = announce_election_spec(2)
        script = [
            (0, 0),              # p0 wins the TAS...
            (0, CRASH_CHOICE),   # ...dies before announcing...
            (0, RECOVER_CHOICE), # ...and comes back with amnesia.
            (0, 0), (0, 0),      # amnesiac re-run: TAS now reads 1 -> 'F'
            (1, 0), (1, 0),      # p1 loses normally -> 'F'
        ]
        execution = spec.run(ScriptedScheduler(script), max_steps=100)
    finally:
        registry.uninstall()
    if execution.outputs != {0: "F", 1: "F"}:
        print(
            "FAIL: crash-then-recover run did not reproduce the "
            f"zero-leader anomaly (outputs: {execution.outputs})"
        )
        return 1
    faults = registry.counter_total("faults_injected")
    recoveries = registry.counter_total("recoveries_total")
    if faults < 1 or recoveries < 1:
        print(
            "FAIL: metrics missed fault events "
            f"(faults_injected={faults}, recoveries_total={recoveries})"
        )
        return 1
    print(
        "crash-then-recover: zero-leader anomaly reproduced, "
        f"faults_injected={faults}, recoveries_total={recoveries}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
