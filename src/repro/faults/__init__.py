"""Fault injection and graceful degradation (`repro.faults`).

The wait-free model quantifies over *all* adversaries — including ones
that crash processes at arbitrary points and ones that outlast any time
budget.  This package makes both first-class:

* :mod:`repro.faults.verdict` — the three-valued outcome
  (``PROVED / REFUTED / INCONCLUSIVE``) every budgeted check reports
  instead of raising when it runs out of time or steps;
* :mod:`repro.faults.budget` — wall-clock deadlines and step budgets,
  installable process-wide so deeply nested explorations degrade
  gracefully;
* :mod:`repro.faults.checkpoint` — the JSONL frontier format the
  explorer uses to survive interrupts (``repro explore --checkpoint`` /
  ``--resume``);
* :mod:`repro.faults.chaos` — a seeded probabilistic crash+stall
  adversary for systems too large to enumerate.

``ChaosScheduler`` is re-exported lazily (PEP 562) so importing the
verdict/budget machinery from the runtime does not pull the scheduler
module in and create an import cycle.
"""

from __future__ import annotations

from repro.faults.budget import (  # noqa: F401
    Budget,
    active_budget,
    get_active_budget,
    set_active_budget,
)
from repro.faults.checkpoint import (  # noqa: F401
    Checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.faults.verdict import Verdict  # noqa: F401

__all__ = [
    "Budget",
    "Checkpoint",
    "ChaosScheduler",
    "Verdict",
    "active_budget",
    "get_active_budget",
    "read_checkpoint",
    "set_active_budget",
    "write_checkpoint",
]


def __getattr__(name: str):
    if name == "ChaosScheduler":
        from repro.faults.chaos import ChaosScheduler

        return ChaosScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
