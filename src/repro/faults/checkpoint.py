"""Checkpoint files: the explorer's decision-prefix frontier, on disk.

Replay-based exploration has a tiny resumable state: the stack of
decision prefixes not yet expanded (the DFS *frontier*).  A checkpoint
serializes that stack plus enough metadata to validate the target system,
so an interrupted ``repro explore`` (SIGINT, deadline, step budget) can
pick up exactly where it stopped — the resumed run visits precisely the
executions the interrupted one had not yet yielded.

Format (``repro-checkpoint/2``): JSONL with one header object followed by
one object per pending prefix, written atomically (temp file +
``os.replace``) so a checkpoint on disk is always complete::

    {"format": "repro-checkpoint/2", "n_processes": 2, "frontier": 3,
     "executions": 17, "max_depth": 60, "max_crashes": 1,
     "max_recoveries": 1, "stats": {...}, "spec": {...}}
    {"prefix": [[0, 0], [1, 0]]}
    {"prefix": [[0, 0], [1, -1]]}
    ...

Decisions are ``[pid, choice]`` pairs; choice ``-1`` is the crash
sentinel and ``-2`` the recovery sentinel (see
:data:`repro.runtime.execution.CRASH_CHOICE` /
:data:`repro.runtime.execution.RECOVER_CHOICE`).  Prefixes are listed
bottom-of-stack first; the resumed explorer processes them top-of-stack
(last line) first, preserving DFS order.  The optional ``spec`` object
is opaque provenance for CLI reconstruction — the library validates only
``n_processes``.

Version 2 added ``max_recoveries`` so a resumed run re-arms the
crash-recovery budget exactly; the reader still accepts
``repro-checkpoint/1`` files (``max_recoveries`` defaults to 0 — the
count-equality resume guarantee is unaffected because a v1 frontier was
produced without recovery branches).

The optional ``execset`` header entry carries the interrupted run's
execution-set digest-so-far (``{"digest": <64 hex>, "records": N}``, see
:mod:`repro.obs.execset`), so a resumed run's *merged* digest is
well-defined: the resumer seeds its recorder from this entry and its
footer covers the whole multi-session exploration.  Headers written
before the entry existed read back as ``execset=None`` — ``repro diff``
reports such digests as ``n/a`` rather than erroring.

Writing a checkpoint emits a ``checkpoint_written`` event (path,
frontier size, executions completed) through :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.fsutil import ensure_parent
from repro.obs import events as _obs_events

FORMAT = "repro-checkpoint/2"

#: Older format markers :func:`read_checkpoint` still understands.
LEGACY_FORMATS = ("repro-checkpoint/1",)

Decision = Tuple[int, int]


@dataclass
class Checkpoint:
    """A parsed checkpoint: pending frontier plus run metadata."""

    n_processes: int
    #: Pending decision prefixes, bottom-of-stack first.
    frontier: List[List[Decision]]
    #: Maximal executions already yielded before the checkpoint.
    executions: int = 0
    max_depth: int = 0
    max_crashes: int = 0
    #: Recovery budget of the interrupted run (0 for v1 files).
    max_recoveries: int = 0
    #: Statistics snapshot of the interrupted run (informational).
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Opaque spec provenance written by the producer (e.g. the CLI).
    spec: Dict[str, Any] = field(default_factory=dict)
    #: Ledger id of the run that wrote this checkpoint (``None`` for
    #: library-driven explorations) — the parent link of a resume chain.
    run_id: Optional[str] = None
    #: Execution-set digest-so-far (``{"digest": ..., "records": ...}``)
    #: of the interrupted run, or ``None`` for legacy headers and runs
    #: without a recorder attached (see :mod:`repro.obs.execset`).
    execset: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        """True when the exploration had finished (empty frontier)."""
        return not self.frontier


def write_checkpoint(
    path: str,
    n_processes: int,
    frontier: List[List[Decision]],
    executions: int = 0,
    max_depth: int = 0,
    max_crashes: int = 0,
    max_recoveries: int = 0,
    stats: Optional[Dict[str, Any]] = None,
    spec: Optional[Dict[str, Any]] = None,
    run_id: Optional[str] = None,
    execset: Optional[Dict[str, Any]] = None,
) -> None:
    """Atomically write a checkpoint file.

    The file appears on disk complete or not at all: content goes to a
    temp file in the destination directory first, then ``os.replace``
    swaps it in.  A checkpoint can therefore be read back even if the
    writing process was killed immediately afterwards.
    """
    header = {
        "format": FORMAT,
        "n_processes": n_processes,
        "frontier": len(frontier),
        "executions": executions,
        "max_depth": max_depth,
        "max_crashes": max_crashes,
        "max_recoveries": max_recoveries,
        "stats": dict(stats or {}),
        "spec": dict(spec or {}),
    }
    if run_id is not None:
        header["run_id"] = run_id
    if execset is not None:
        header["execset"] = dict(execset)
    ensure_parent(os.path.abspath(path))
    directory = os.path.dirname(os.path.abspath(path)) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for prefix in frontier:
                handle.write(
                    json.dumps(
                        {"prefix": [[pid, choice] for pid, choice in prefix]}
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    if _obs_events.is_enabled():
        _obs_events.emit(
            "checkpoint_written",
            path=path,
            frontier=len(frontier),
            executions=executions,
        )


def peek_checkpoint(path: str) -> Optional[Checkpoint]:
    """Tolerant :func:`read_checkpoint` for supervisors: ``None`` on any
    missing, unreadable, or malformed file.

    ``repro serve`` restarts crashed workers from their last checkpoint;
    a worker killed before its first checkpoint (no file) or while the
    path is otherwise unusable should fall back to a fresh start, not
    take the daemon down.  Library callers that *own* a checkpoint keep
    the strict reader — for them corruption is a real error.
    """
    try:
        return read_checkpoint(path)
    except (OSError, ProtocolError):
        return None


def read_checkpoint(path: str) -> Checkpoint:
    """Parse a checkpoint file, validating the format marker.

    Unlike event traces (where a truncated tail is expected debris),
    checkpoints are written atomically, so corruption here is a real
    error: a wrong frontier silently changes which executions a resumed
    run visits.  Any malformed line raises :class:`ProtocolError`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ProtocolError(f"checkpoint {path!r} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ProtocolError(f"checkpoint {path!r}: corrupt header: {error}") from None
    if not isinstance(header, dict) or (
        header.get("format") != FORMAT
        and header.get("format") not in LEGACY_FORMATS
    ):
        raise ProtocolError(
            f"checkpoint {path!r}: unsupported format "
            f"{header.get('format') if isinstance(header, dict) else header!r}; "
            f"expected {FORMAT!r}"
        )
    frontier: List[List[Decision]] = []
    for index, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
            prefix = [(int(pid), int(choice)) for pid, choice in record["prefix"]]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"checkpoint {path!r}: corrupt frontier line {index}: {error}"
            ) from None
        frontier.append(prefix)
    declared = header.get("frontier")
    if declared is not None and declared != len(frontier):
        raise ProtocolError(
            f"checkpoint {path!r}: header declares {declared} frontier "
            f"entries, found {len(frontier)} — file is incomplete"
        )
    return Checkpoint(
        n_processes=int(header.get("n_processes", 0)),
        frontier=frontier,
        executions=int(header.get("executions", 0)),
        max_depth=int(header.get("max_depth", 0)),
        max_crashes=int(header.get("max_crashes", 0)),
        max_recoveries=int(header.get("max_recoveries", 0)),
        stats=dict(header.get("stats") or {}),
        spec=dict(header.get("spec") or {}),
        run_id=header.get("run_id"),
        execset=(
            dict(header["execset"])
            if isinstance(header.get("execset"), dict)
            else None
        ),
    )
