"""Render the experiment suite as markdown.

Usage::

    python -m repro.experiments.report            # print to stdout
    python -m repro.experiments.report --check    # nonzero exit on failure
    python -m repro.experiments.report --deadline 30
                                                  # graceful degradation:
                                                  # unfinished rows -> ?
    python -m repro.experiments.report --metrics-out suite.prom
                                                  # + Prometheus exposition

With ``--check``, the exit code reflects the table's worst verdict:
0 all proved, 1 a claim was refuted, 2 an experiment errored,
3 inconclusive only (budget ran out before anything broke).

The committed EXPERIMENTS.md was produced by this module; re-run it to
regenerate the measured columns on your machine.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.rows import overall_verdict, render_table
from repro.experiments.suite import run_all, timing_summary
from repro.faults.budget import Budget, active_budget
from repro.faults.verdict import Verdict
from repro.obs.metrics import get_registry, reset_registry

#: ``--check`` exit code per aggregate verdict.
EXIT_CODES = {
    Verdict.PROVED: 0,
    Verdict.REFUTED: 1,
    Verdict.ERROR: 2,
    Verdict.INCONCLUSIVE: 3,
}

DESCRIPTIONS = {
    "E1": "Consensus lower bound: n processes on one O(n,k) group agree "
    "under every schedule — the executable half of 'consensus number >= n'.",
    "E2": "The headline task: (n(k+2), k+1)-set consensus from one O(n,k), "
    "exhaustive for small members, randomized for larger ones, plus the "
    "adversary that shows the bound tight.",
    "E3": "The impossibility side: a register-only consensus attempt is "
    "refuted by a concrete schedule; the commute-or-overwrite certificate "
    "proves registers are level 1 and locates the synchronization kernel "
    "of TAS and of O(n,k); the critical-configuration walk lands on the "
    "synchronization object.",
    "E4": "The set-consensus transfer construction achieves exactly the "
    "implementability theorem's bound (both directions: never above, "
    "reachable).",
    "E5": "The infinite strict hierarchy at fixed consensus number n: "
    "per-level separation certificates plus an executable head-to-head at "
    "the witness system size.",
    "E6": "Common2 refutation: O(2,k) has consensus number 2 but beats "
    "everything 2-consensus objects can do.",
    "E7": "BG simulation: clean completion, and crash containment (one "
    "crashed simulator blocks at most one simulated process).",
    "E8": "The Borowsky-Gafni immediate-snapshot algorithm, run under "
    "every schedule, reproduces exactly the maximal simplexes of the "
    "standard chromatic subdivision -- the combinatorial-topology "
    "structure behind the era's set-consensus lower bounds.",
    "E9": "Substrate soundness: the register-based snapshot and the "
    "universal construction are linearizable against their sequential "
    "specs.",
    "E10": "Performance envelope of the simulator and the exhaustive "
    "explorer.",
    "E11": "Crash-recovery adversary: the TAS election is safe when "
    "crashed processes stay dead, refuted once they may come back with "
    "amnesia (shared objects persist, private state resets), and restored "
    "by the recoverable TAS variant.",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.report",
        description="run the experiment suite and print the EXPERIMENTS.md tables",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless every row is proved "
        "(1 refuted, 2 error, 3 inconclusive)",
    )
    parser.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget; experiments it does not cover degrade to "
        "INCONCLUSIVE rows instead of running",
    )
    parser.add_argument(
        "--max-steps", type=int, metavar="N", default=None,
        help="total simulator-step budget across the whole suite; same "
        "graceful degradation as --deadline",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE.prom", default=None,
        help="also write suite metrics (phase_seconds etc.) in Prometheus "
        "text exposition format",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    check = args.check
    if args.metrics_out:
        reset_registry()  # the exposition should describe this suite run only
        get_registry().install()  # bus subscription: step/schedule counters too
    budget = None
    if args.deadline is not None or args.max_steps is not None:
        budget = Budget(deadline=args.deadline, max_steps=args.max_steps)
    started = time.perf_counter()
    timings = {}
    try:
        if budget is not None:
            with active_budget(budget):
                all_rows = run_all(timings=timings)
        else:
            all_rows = run_all(timings=timings)
    finally:
        if args.metrics_out:
            get_registry().uninstall()
    counts = {verdict: 0 for verdict in Verdict}
    print("# Experiment report (generated by repro.experiments.report)\n")
    for experiment_id, rows in all_rows.items():
        print(f"## {experiment_id}\n")
        print(DESCRIPTIONS.get(experiment_id, ""), "\n")
        print(render_table(rows))
        print()
        witnessed = [row for row in rows if row.witness]
        if witnessed:
            for row in witnessed:
                print(
                    f"- witness for “{row.setting}”: `{row.witness}` "
                    f"(replay/shrink with `repro explain {row.witness}`)"
                )
            print()
        for row in rows:
            counts[row.effective_verdict] += 1
    elapsed = time.perf_counter() - started
    total = sum(len(rows) for rows in all_rows.values())
    print("## Phase timings\n")
    print("```")
    print(timing_summary(timings))
    print("```\n")
    summary = (
        f"_{total} rows: {counts[Verdict.PROVED]} proved, "
        f"{counts[Verdict.REFUTED]} refuted, "
        f"{counts[Verdict.ERROR]} errors, "
        f"{counts[Verdict.INCONCLUSIVE]} inconclusive; {elapsed:.1f}s._"
    )
    if budget is not None:
        summary += f" _(budget: {budget.describe()})_"
    print(summary)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(get_registry().render_prometheus())
    if check:
        verdict = overall_verdict(
            [row for rows in all_rows.values() for row in rows]
        )
        return EXIT_CODES[verdict]
    return 0


if __name__ == "__main__":
    sys.exit(main())
