"""The experiment suite: every paper claim as a measured row.

The reproduced paper is pure theory — no tables or figures exist.  Its
"evaluation" is a set of theorems; each becomes an experiment that runs
protocols/analyses and reports *claimed vs measured*:

========  ==========================================================
E1        O(n, k) solves n-process consensus (consensus number >= n)
E2        O(n, k) solves (n(k+2), k+1)-set consensus; bound tight
E3        Impossibility side: register-only consensus fails; the
          commute-or-overwrite certificate separates level 1 from the rest
E4        Set-consensus transfer matches the implementability theorem
E5        The infinite strict hierarchy at fixed consensus number n
E6        The Common2 refutation at n = 2
E7        BG simulation: clean completion and crash containment
E8        The topology of immediate snapshot: the explorer recovers the
          standard chromatic subdivision (1 / 3 / 13 maximal simplexes)
E9        Substrate linearizability (snapshot from registers; universal
          construction)
E10       Simulator/model-checker performance envelope
E11       Crash-recovery adversary: TAS election safe under crash-stop,
          refuted under crash-recovery with amnesia, restored by the
          recoverable TAS variant
========  ==========================================================

(The automated critical-configuration walk is part of E3.)

Each ``run_*`` function returns a list of :class:`ExperimentRow`;
``python -m repro.experiments.report`` renders the whole suite as the
tables recorded in EXPERIMENTS.md.
"""

from repro.experiments.rows import ExperimentRow
from repro.experiments.suite import (
    run_all,
    run_e1_consensus,
    run_e2_set_consensus,
    run_e3_impossibility,
    run_e4_transfer,
    run_e5_hierarchy,
    run_e6_common2,
    run_e7_bg,
    run_e8_subdivision,
    run_e9_substrate,
    run_e10_runtime,
    run_e11_recovery,
)

__all__ = [
    "ExperimentRow",
    "run_all",
    "run_e1_consensus",
    "run_e2_set_consensus",
    "run_e3_impossibility",
    "run_e4_transfer",
    "run_e5_hierarchy",
    "run_e6_common2",
    "run_e7_bg",
    "run_e8_subdivision",
    "run_e9_substrate",
    "run_e10_runtime",
    "run_e11_recovery",
]
