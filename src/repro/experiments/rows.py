"""Row format shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class ExperimentRow:
    """One claim-vs-measured line of an experiment table.

    Attributes
    ----------
    experiment:
        Experiment id ("E2", ...).
    setting:
        Human-readable parameter description ("O(2,1), N=6, exhaustive").
    claimed:
        What the theory says must happen.
    measured:
        What the run produced.
    ok:
        Whether measured satisfies claimed.
    detail:
        Extra numbers (executions checked, steps, durations...).
    """

    experiment: str
    setting: str
    claimed: str
    measured: str
    ok: bool
    detail: Dict[str, Any] = field(default_factory=dict)

    def markdown(self) -> str:
        status = "✓" if self.ok else "✗"
        return (
            f"| {self.experiment} | {self.setting} | {self.claimed} "
            f"| {self.measured} | {status} |"
        )


def render_table(rows: List[ExperimentRow]) -> str:
    """GitHub-flavored markdown table for a list of rows."""
    header = (
        "| exp | setting | claimed | measured | ok |\n"
        "|---|---|---|---|---|"
    )
    return "\n".join([header] + [row.markdown() for row in rows])
