"""Row format shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.verdict import Verdict, worst


@dataclass
class ExperimentRow:
    """One claim-vs-measured line of an experiment table.

    Attributes
    ----------
    experiment:
        Experiment id ("E2", ...).
    setting:
        Human-readable parameter description ("O(2,1), N=6, exhaustive").
    claimed:
        What the theory says must happen.
    measured:
        What the run produced.
    ok:
        Whether measured satisfies claimed.
    detail:
        Extra numbers (executions checked, steps, durations...).
    verdict:
        Three-valued refinement of ``ok`` (see :mod:`repro.faults.verdict`).
        ``None`` means "derive from ok": True -> PROVED, False -> REFUTED.
        Budget-limited runs set it to INCONCLUSIVE explicitly; a crashed
        experiment is reported as an ERROR row instead of aborting the
        suite.
    witness:
        Path of the archived ``repro-witness/1`` bundle explaining this
        row's deciding execution (a REFUTED counterexample or a
        PROVED-existence witness) — set when the suite ran with witness
        capture active, ``None`` otherwise.  Feed it to
        ``repro explain`` to replay, shrink, and render the run.
    """

    experiment: str
    setting: str
    claimed: str
    measured: str
    ok: bool
    detail: Dict[str, Any] = field(default_factory=dict)
    verdict: Optional[Verdict] = None
    witness: Optional[str] = None

    @property
    def effective_verdict(self) -> Verdict:
        if self.verdict is not None:
            return self.verdict
        return Verdict.PROVED if self.ok else Verdict.REFUTED

    def markdown(self, with_witness: bool = False) -> str:
        line = (
            f"| {self.experiment} | {self.setting} | {self.claimed} "
            f"| {self.measured} | {self.effective_verdict.symbol} |"
        )
        if with_witness:
            line += f" {self.witness or ''} |"
        return line


def error_row(experiment: str, setting: str, error: BaseException) -> ExperimentRow:
    """The ERROR row an experiment collapses to when its runner raises:
    the suite keeps going and the failure is visible in the table."""
    return ExperimentRow(
        experiment=experiment,
        setting=setting,
        claimed="experiment completes",
        measured=f"{type(error).__name__}: {error}",
        ok=False,
        verdict=Verdict.ERROR,
        detail={"error_type": type(error).__name__},
    )


def inconclusive_row(
    experiment: str, setting: str, claimed: str, reason: str
) -> ExperimentRow:
    """Row for an experiment skipped or cut short by a budget."""
    return ExperimentRow(
        experiment=experiment,
        setting=setting,
        claimed=claimed,
        measured=f"inconclusive: {reason}",
        ok=True,
        verdict=Verdict.INCONCLUSIVE,
    )


def overall_verdict(rows: List[ExperimentRow]) -> Verdict:
    """Severity-ordered aggregate of the whole table (REFUTED > ERROR >
    INCONCLUSIVE > PROVED)."""
    return worst(row.effective_verdict for row in rows)


def render_table(rows: List[ExperimentRow]) -> str:
    """GitHub-flavored markdown table for a list of rows.

    The witness column appears only when at least one row carries an
    archived witness path, so tables from capture-less runs render
    exactly as before.
    """
    with_witness = any(row.witness for row in rows)
    if with_witness:
        header = (
            "| exp | setting | claimed | measured | ok | witness |\n"
            "|---|---|---|---|---|---|"
        )
    else:
        header = (
            "| exp | setting | claimed | measured | ok |\n"
            "|---|---|---|---|---|"
        )
    return "\n".join(
        [header] + [row.markdown(with_witness=with_witness) for row in rows]
    )
