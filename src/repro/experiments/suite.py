"""Experiment implementations (see package docstring for the index)."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.algorithms.consensus_from_n_consensus import (
    partition_bound,
    partition_set_consensus_spec as n_consensus_partition_spec,
)
from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import (
    consensus_spec,
    partition_set_consensus_spec,
    set_consensus_spec,
)
from repro.algorithms.set_consensus_transfer import transfer_bound, transfer_spec
from repro.algorithms.snapshot_impl import (
    annotated_scan,
    annotated_update,
    snapshot_objects,
)
from repro.algorithms.bg_simulation import simulation_spec, write_scan_protocol
from repro.algorithms.universal import universal_spec
from repro.analysis.commutativity import commute_or_overwrite_certificate
from repro.analysis.linearizability import is_linearizable
from repro.analysis.valency import consensus_counterexample, find_critical_configuration
from repro.core.common2 import common2_refutation
from repro.core.family import FamilyMember, HierarchyObjectSpec
from repro.core.power import family_agreement
from repro.core.theorem import max_agreement
from repro.errors import ExplorationLimitError
from repro.experiments.rows import (
    ExperimentRow,
    error_row,
    inconclusive_row,
    overall_verdict,
)
from repro.faults.budget import get_active_budget
from repro.faults.verdict import Verdict
from repro.obs import events as _obs_events
from repro.obs import witness as _obs_witness
from repro.obs.spans import span
from repro.objects.queue_stack import QueueSpec
from repro.objects.register import RegisterSpec
from repro.objects.rmw import TestAndSetSpec
from repro.objects.snapshot import AtomicSnapshotSpec
from repro.runtime.explorer import Explorer
from repro.runtime.history import history_from_execution
from repro.runtime.ops import invoke
from repro.runtime.scheduler import RandomScheduler, SoloScheduler
from repro.runtime.system import SystemSpec
from repro.tasks import (
    ConsensusTask,
    KSetConsensusTask,
    check_task_all_schedules,
    check_task_random_schedules,
)


def _letters(count: int) -> List[str]:
    return [f"v{i}" for i in range(count)]


def _audit_headroom_row(
    experiment: str,
    setting: str,
    spec: SystemSpec,
    inputs: List[str],
    max_depth: int = 20,
) -> ExperimentRow:
    """Informational reduction-headroom row from a state-space audit.

    Always ``ok`` — the audit measures how much redundancy DPOR, symmetry
    and state caching *would* remove; it never judges the experiment.
    The measured string carries no wall-clock, so regenerated tables stay
    byte-stable (``repro report`` --check).
    """
    from repro.obs.audit import run_audit

    auditor, _explorer = run_audit(
        spec, max_depth=max_depth, value_alphabet=inputs
    )
    auditor.emit_summary()
    return ExperimentRow(
        experiment=experiment,
        setting=setting,
        claimed="headroom: cache / DPOR / symmetry (informational)",
        measured=(
            f"revisit {auditor.revisit_ratio:.2f}, "
            f"commuting {auditor.pairs.commuting_fraction:.2f}, "
            f"orbit savings {auditor.orbit_savings:.2f} "
            f"({auditor.configurations} configs, "
            f"{auditor.distinct_states} states)"
        ),
        ok=True,
        detail={
            "revisit_ratio": round(auditor.revisit_ratio, 4),
            "commuting_fraction": round(auditor.pairs.commuting_fraction, 4),
            "orbit_savings": round(auditor.orbit_savings, 4),
        },
    )


# ----------------------------------------------------------------------
# E1 — consensus lower bound
# ----------------------------------------------------------------------
def run_e1_consensus() -> List[ExperimentRow]:
    """n processes on one group of O(n, k) agree, under every schedule."""
    rows = []
    for n, k in [(1, 1), (2, 1), (2, 2), (3, 1)]:
        inputs = _letters(n)
        with _obs_witness.witness_context(
            spec={"builder": "consensus", "n": n, "k": k},
            predicate={"name": "k-agreement-violated", "k": 1, "inputs": inputs},
            label=f"E1 consensus O({n},{k})",
        ):
            report = check_task_all_schedules(
                consensus_spec(n, k, inputs), ConsensusTask(), inputs_dict(inputs)
            )
        rows.append(
            ExperimentRow(
                experiment="E1",
                setting=f"O({n},{k}), {n} processes, exhaustive",
                claimed="consensus in all executions",
                measured=(
                    f"{report.executions_checked} executions, "
                    f"{'all agree' if report.ok else report.reason}"
                ),
                ok=report.ok,
                detail={"executions": report.executions_checked},
                witness=report.witness_path,
            )
        )
    return rows


# ----------------------------------------------------------------------
# E2 — the headline set-consensus power, exhaustive + randomized + tight
# ----------------------------------------------------------------------
def run_e2_set_consensus() -> List[ExperimentRow]:
    rows = []
    # Exhaustive for the smallest interesting members.
    for n, k in [(1, 1), (2, 1)]:
        member = FamilyMember(n, k)
        inputs = _letters(member.ports)
        with _obs_witness.witness_context(
            spec={"builder": "set-consensus", "n": n, "k": k},
            predicate={
                "name": "k-agreement-violated", "k": k + 1, "inputs": inputs,
            },
            label=f"E2 set consensus O({n},{k}) exhaustive",
        ):
            report = check_task_all_schedules(
                set_consensus_spec(n, k, inputs),
                KSetConsensusTask(k + 1),
                inputs_dict(inputs),
            )
        worst = max(report.distinct_output_counts) if report.ok else -1
        rows.append(
            ExperimentRow(
                experiment="E2",
                setting=f"O({n},{k}), N={member.ports}, exhaustive",
                claimed=f"<= {k + 1} distinct decisions, always",
                measured=(
                    f"{report.executions_checked} executions, worst {worst}"
                    if report.ok
                    else report.reason
                ),
                ok=report.ok and worst <= k + 1,
                detail={"executions": report.executions_checked, "worst": worst},
                witness=report.witness_path,
            )
        )
    # Randomized for larger members.
    for n, k in [(2, 2), (3, 1), (4, 2)]:
        member = FamilyMember(n, k)
        inputs = _letters(member.ports)
        with _obs_witness.witness_context(
            spec={"builder": "set-consensus", "n": n, "k": k},
            predicate={
                "name": "k-agreement-violated", "k": k + 1, "inputs": inputs,
            },
            label=f"E2 set consensus O({n},{k}) random",
        ):
            report = check_task_random_schedules(
                set_consensus_spec(n, k, inputs),
                KSetConsensusTask(k + 1),
                inputs_dict(inputs),
                seeds=range(300),
            )
        worst = max(report.distinct_output_counts) if report.ok else -1
        rows.append(
            ExperimentRow(
                experiment="E2",
                setting=f"O({n},{k}), N={member.ports}, 300 random schedules",
                claimed=f"<= {k + 1} distinct decisions",
                measured=f"worst {worst}",
                ok=report.ok,
                detail={"worst": worst},
                witness=report.witness_path,
            )
        )
    # Tightness: the ring-order solo adversary reaches the bound.
    for n, k in [(2, 1), (2, 2), (3, 1)]:
        member = FamilyMember(n, k)
        inputs = _letters(member.ports)
        execution = set_consensus_spec(n, k, inputs).run(
            SoloScheduler(list(range(member.ports)))
        )
        reached = len(execution.distinct_outputs())
        rows.append(
            ExperimentRow(
                experiment="E2",
                setting=f"O({n},{k}), ring-order solo adversary",
                claimed=f"exactly {k + 1} distinct decisions (tight)",
                measured=f"{reached}",
                ok=reached == k + 1,
            )
        )
    return rows


# ----------------------------------------------------------------------
# E3 — impossibility side (valency + certificates)
# ----------------------------------------------------------------------
def run_e3_impossibility() -> List[ExperimentRow]:
    rows = []

    # (a) Register-only consensus attempt must fail somewhere.
    def naive(pid, value):
        yield invoke(f"v{pid}", "write", value)
        other = yield invoke(f"v{1 - pid}", "read")
        return value if other is None else min(value, other)

    from repro.algorithms.helpers import build_spec

    naive_spec = build_spec(
        {"v0": RegisterSpec(), "v1": RegisterSpec()}, naive, ["b", "a"]
    )
    witness = consensus_counterexample(naive_spec, {0: "b", 1: "a"})
    rows.append(
        ExperimentRow(
            experiment="E3",
            setting="register-only 2-consensus attempt",
            claimed="a violating schedule exists (FLP/Herlihy)",
            measured="counterexample found" if witness else "none found",
            ok=witness is not None,
            detail={"schedule": witness.schedule if witness else None},
        )
    )

    # (b) Certificates: registers certified at level 1, TAS and the
    # family escape the certificate.
    register_report = commute_or_overwrite_certificate(
        RegisterSpec(), [("write", ("a",)), ("write", ("b",)), ("read", ())]
    )
    rows.append(
        ExperimentRow(
            experiment="E3",
            setting="registers, commute-or-overwrite",
            claimed="certified (consensus number 1)",
            measured=register_report.summary(),
            ok=register_report.certified,
        )
    )
    tas_report = commute_or_overwrite_certificate(
        TestAndSetSpec(), [("test_and_set", ()), ("read", ())]
    )
    family_report = commute_or_overwrite_certificate(
        HierarchyObjectSpec(2, 1),
        [("invoke", (0, 0, "a")), ("invoke", (0, 1, "b")), ("invoke", (1, 0, "c"))],
        max_witnesses=5,
    )
    rows.append(
        ExperimentRow(
            experiment="E3",
            setting="TAS and O(2,1), commute-or-overwrite",
            claimed="both escape the certificate (power > registers)",
            measured=(
                f"TAS witnesses {len(tas_report.witnesses)}, "
                f"O(2,1) witnesses {len(family_report.witnesses)}"
            ),
            ok=(not tas_report.certified) and (not family_report.certified),
        )
    )

    # (c) Critical configuration of a correct 2-consensus protocol sits
    # on the synchronization object.
    def tas_consensus(pid, value):
        yield invoke(f"v{pid}", "write", value)
        lost = yield invoke("t", "test_and_set")
        if lost == 0:
            return value
        other = yield invoke(f"v{1 - pid}", "read")
        return other

    tas_spec = build_spec(
        {"t": TestAndSetSpec(), "v0": RegisterSpec(), "v1": RegisterSpec()},
        tas_consensus,
        ["x", "y"],
    )
    critical = find_critical_configuration(tas_spec)
    pending_targets = set()
    if critical is not None:
        system = tas_spec.replay(critical.prefix)
        pending_targets = {
            system.pending_operation(pid).target for pid in system.enabled_pids()
        }
    rows.append(
        ExperimentRow(
            experiment="E3",
            setting="TAS consensus protocol, critical configuration",
            claimed="exists; both pending steps on the TAS object",
            measured=f"pending targets {sorted(pending_targets)}",
            ok=pending_targets == {"t"},
        )
    )
    return rows


# ----------------------------------------------------------------------
# E4 — the transfer construction matches the theorem exactly
# ----------------------------------------------------------------------
def run_e4_transfer() -> List[ExperimentRow]:
    rows = []
    for m, j, total in [(2, 1, 3), (2, 1, 5), (3, 2, 4), (3, 1, 5), (4, 2, 6)]:
        inputs = _letters(total)
        spec = transfer_spec(m, j, inputs)
        bound = transfer_bound(m, j, total)
        worst = 0
        explorer = Explorer(spec, max_depth=20)
        violated = False
        for execution in explorer.executions():
            distinct = len(execution.distinct_outputs())
            worst = max(worst, distinct)
            if distinct > bound:
                violated = True
        rows.append(
            ExperimentRow(
                experiment="E4",
                setting=f"({total} procs) from ({m},{j})-SC, exhaustive",
                claimed=f"worst case exactly {bound} (theorem, tight)",
                measured=f"worst {worst} over {explorer.stats.executions} executions",
                ok=(not violated) and worst == bound,
                detail={"executions": explorer.stats.executions},
            )
        )
    return rows


# ----------------------------------------------------------------------
# E5 — the infinite strict hierarchy
# ----------------------------------------------------------------------
def run_e5_hierarchy() -> List[ExperimentRow]:
    rows = []
    for n in (1, 2, 3):
        for k in (1, 2, 3):
            member = FamilyMember(n, k)
            witness_n = member.separation_system_size
            strong = family_agreement(n, k, witness_n)
            weak = family_agreement(n, k + 1, witness_n)
            forward = family_agreement(n, k, n * (k + 3))
            rows.append(
                ExperimentRow(
                    experiment="E5",
                    setting=(
                        f"O({n},{k}) vs O({n},{k + 1}) at N={witness_n} "
                        f"(paper constant nk+n+k={member.paper_separation_system_size})"
                    ),
                    claimed=f"{k + 1} vs {k + 2}, and forward cover <= {k + 2}",
                    measured=f"{strong} vs {weak}, forward {forward}",
                    ok=strong == k + 1 and weak == k + 2 and forward <= k + 2,
                )
            )
    # Executable side for the smallest pair: run both protocols at the
    # witness size and compare achieved worst-case agreement.
    n, k = 2, 1
    witness_n = FamilyMember(n, k).separation_system_size  # 5
    inputs = _letters(witness_n)
    strong_spec = partition_set_consensus_spec(n, k, inputs)
    weak_spec = partition_set_consensus_spec(n, k + 1, inputs)
    strong_worst = max(
        len(strong_spec.run(RandomScheduler(seed)).distinct_outputs())
        for seed in range(200)
    )
    weak_forced = len(
        weak_spec.run(SoloScheduler(list(range(witness_n)))).distinct_outputs()
    )
    rows.append(
        ExperimentRow(
            experiment="E5",
            setting=f"executable: both levels at N={witness_n}",
            claimed=f"O(2,1) stays <= {k + 1}; O(2,2) forced to {k + 2}",
            measured=f"O(2,1) worst {strong_worst}; O(2,2) forced {weak_forced}",
            ok=strong_worst <= k + 1 and weak_forced == k + 2,
        )
    )
    audit_inputs = _letters(5)
    rows.append(
        _audit_headroom_row(
            "E5",
            "state-space audit: O(2,1) set consensus, N=5",
            set_consensus_spec(2, 1, audit_inputs),
            audit_inputs,
        )
    )
    return rows


# ----------------------------------------------------------------------
# E6 — Common2 refutation
# ----------------------------------------------------------------------
def run_e6_common2() -> List[ExperimentRow]:
    rows = []
    for k in (1, 2, 3):
        cert = common2_refutation(k)
        rows.append(
            ExperimentRow(
                experiment="E6",
                setting=f"O(2,{k}) vs 2-consensus at N={cert.system_size}",
                claimed=f"{cert.family_agreement} < {cert.common2_agreement}",
                measured="certificate holds" if cert.holds else "broken",
                ok=cert.holds,
            )
        )
    # Executable: N = 6, both sides.
    inputs = _letters(6)
    family_worst = max(
        len(
            set_consensus_spec(2, 1, inputs)
            .run(RandomScheduler(seed))
            .distinct_outputs()
        )
        for seed in range(300)
    )
    baseline = n_consensus_partition_spec(2, inputs)
    separating = baseline.run(SoloScheduler([0, 2, 4, 1, 3, 5]))
    forced = len(separating.distinct_outputs())
    # The separating run IS the refutation — archive it when capture is on.
    witness_path = _obs_witness.capture(
        separating,
        kind=_obs_witness.KIND_EXISTENCE,
        source="suite.e6_common2",
        reason="2-consensus partition baseline forced to 3 decisions "
        "(Common2 refutation, N=6)",
        spec={"builder": "n-consensus-partition", "n": 2, "inputs": inputs},
        predicate={"name": "distinct-outputs-at-least", "count": 3},
        label="E6 Common2 refutation: partition baseline forced to 3",
    )
    rows.append(
        ExperimentRow(
            experiment="E6",
            setting="executable: O(2,1) vs 2-consensus partition, N=6",
            claimed=f"family <= 2 always; baseline forced to {partition_bound(2, 6)}",
            measured=f"family worst {family_worst}; baseline forced {forced}",
            ok=family_worst <= 2 and forced == 3,
            witness=witness_path,
        )
    )
    # The positive half of the conjecture, for contrast: TAS *is* in
    # Common2 — the doorway+tournament implementation from 2-consensus
    # objects is linearizable one-shot TAS.
    from repro.algorithms.tournament_tas import WIN, tournament_spec
    from repro.objects.rmw import TestAndSetSpec

    linearizable = True
    winners_ok = True
    checked = 0
    for seed in range(100):
        execution = tournament_spec(4).run(RandomScheduler(seed))
        if list(execution.outputs.values()).count(WIN) != 1:
            winners_ok = False
            break
        history = history_from_execution(execution)
        if not is_linearizable(history, TestAndSetSpec()):
            linearizable = False
            break
        checked += 1
    rows.append(
        ExperimentRow(
            experiment="E6",
            setting="contrast: TAS from 2-consensus (doorway+tournament), n=4",
            claimed="TAS IS in Common2: linearizable, one winner",
            measured=f"{checked} schedules checked",
            ok=linearizable and winners_ok,
        )
    )
    return rows


# ----------------------------------------------------------------------
# E7 — BG simulation
# ----------------------------------------------------------------------
def run_e7_bg() -> List[ExperimentRow]:
    from repro.runtime.scheduler import CrashingScheduler, RoundRobinScheduler

    rows = []
    protocol = write_scan_protocol(3)
    spec = simulation_spec(protocol, 2, ["a", "b", "c"])
    execution = spec.run(RoundRobinScheduler(), max_steps=40_000)
    merged: Dict[int, object] = {}
    for result in execution.outputs.values():
        merged.update(result)
    rows.append(
        ExperimentRow(
            experiment="E7",
            setting="2 simulators, 3 simulated processes, clean run",
            claimed="all 3 simulated processes decide",
            measured=f"{len(merged)}/3 decided",
            ok=len(merged) == 3,
        )
    )
    blocked_worst = 0
    for crash_step in range(0, 40, 5):
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        scheduler = CrashingScheduler(RoundRobinScheduler(), {0: crash_step})
        execution = spec.run(scheduler, max_steps=40_000)
        merged = {}
        for result in execution.outputs.values():
            merged.update(result)
        blocked_worst = max(blocked_worst, 3 - len(merged))
    rows.append(
        ExperimentRow(
            experiment="E7",
            setting="1 of 2 simulators crashed at varied points",
            claimed="at most 1 simulated process blocked (containment)",
            measured=f"worst blocked {blocked_worst}",
            ok=blocked_worst <= 1,
        )
    )
    # Exhaustive over crash *timings*: pin the schedule to a deterministic
    # fair projection and let the explorer branch only on "crash simulator
    # 0 now" — every crash point along the schedule, not a stride-5 sample.
    def pinned(system, enabled):
        if not enabled:
            return enabled
        return [sorted(enabled)[len(system.trace.steps) % len(enabled)]]

    explorer = Explorer(
        simulation_spec(protocol, 2, ["a", "b", "c"]),
        max_depth=200,
        strict=False,
        pid_filter=pinned,
        max_crashes=1,
        crashable_pids={0},
    )
    timing_worst = 0
    timings = 0
    for execution in explorer.executions():
        if execution.crashed_pids():
            timings += 1
        merged = {}
        for result in execution.outputs.values():
            merged.update(result)
        timing_worst = max(timing_worst, 3 - len(merged))
    rows.append(
        ExperimentRow(
            experiment="E7",
            setting="simulator 0 crashed at every point (exhaustive timing)",
            claimed="containment at every crash timing",
            measured=(
                f"{timings} crash timings + clean run, "
                f"worst blocked {timing_worst}"
            ),
            ok=timing_worst <= 1 and timings > 0,
            detail={
                "crash_timings": timings,
                "executions": explorer.stats.executions,
                "faults_injected": explorer.stats.faults_injected,
            },
            verdict=(
                Verdict.INCONCLUSIVE if explorer.interrupted is not None else None
            ),
        )
    )
    # Probabilistic fault sweep: the seeded chaos adversary mixes random
    # scheduling, stalls, and mid-run crashes of simulator 0.
    from repro.faults import ChaosScheduler

    chaos_worst = 0
    chaos_runs = 0
    chaos_crashes = 0
    for seed in range(20):
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        scheduler = ChaosScheduler(
            seed=seed,
            crash_probability=0.01,
            stall_probability=0.05,
            max_crashes=1,
            crashable_pids={0},
        )
        execution = spec.run(scheduler, max_steps=40_000)
        merged = {}
        for result in execution.outputs.values():
            merged.update(result)
        chaos_worst = max(chaos_worst, 3 - len(merged))
        chaos_runs += 1
        chaos_crashes += len(execution.crashed_pids())
    rows.append(
        ExperimentRow(
            experiment="E7",
            setting=f"chaos adversary, {chaos_runs} seeded runs",
            claimed="containment under random crash/stall injection",
            measured=(
                f"{chaos_crashes} crashes injected, worst blocked {chaos_worst}"
            ),
            ok=chaos_worst <= 1,
            detail={"chaos_crashes": chaos_crashes},
        )
    )
    return rows


# ----------------------------------------------------------------------
# E8 — the topology of immediate snapshot (chromatic subdivision)
# ----------------------------------------------------------------------
def run_e8_subdivision() -> List[ExperimentRow]:
    """The Borowsky–Gafni immediate-snapshot algorithm (registers only),
    run under every schedule, must produce exactly the maximal simplexes
    of the standard chromatic subdivision: 1, 3, 13 for n = 1, 2, 3."""
    from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
    from repro.tasks.immediate_snapshot import ImmediateSnapshotTask

    expected = {1: 1, 2: 3, 3: 13}
    rows = []
    task = ImmediateSnapshotTask()
    for n, simplexes in expected.items():
        inputs = [f"x{i}" for i in range(n)]
        spec = immediate_snapshot_spec(inputs)
        explorer = Explorer(spec, max_depth=12 * n)
        profiles = set()
        valid = True
        for execution in explorer.executions():
            if not task.check(inputs_dict(inputs), execution.outputs):
                valid = False
                break
            profiles.add(tuple(execution.outputs[pid] for pid in range(n)))
        rows.append(
            ExperimentRow(
                experiment="E8",
                setting=f"immediate snapshot, n={n}, exhaustive",
                claimed=f"task holds; exactly {simplexes} output profiles "
                "(standard chromatic subdivision)",
                measured=(
                    f"{explorer.stats.executions} executions, "
                    f"{len(profiles)} profiles"
                ),
                ok=valid and len(profiles) == simplexes,
                detail={"executions": explorer.stats.executions},
            )
        )
    # Iterated rounds: each round subdivides again — 3^R edges for n = 2.
    from repro.algorithms.iterated_snapshot import iis_spec

    for rounds in (1, 2, 3):
        spec = iis_spec(["x0", "x1"], rounds)
        explorer = Explorer(spec, max_depth=10 * rounds + 10)
        profiles = set()
        for execution in explorer.executions():
            profiles.add(tuple(execution.outputs[pid] for pid in range(2)))
        rows.append(
            ExperimentRow(
                experiment="E8",
                setting=f"iterated IS, n=2, {rounds} round(s), exhaustive",
                claimed=f"3^{rounds} = {3 ** rounds} output profiles "
                "(iterated subdivision)",
                measured=(
                    f"{explorer.stats.executions} executions, "
                    f"{len(profiles)} profiles"
                ),
                ok=len(profiles) == 3 ** rounds,
            )
        )
    return rows


# ----------------------------------------------------------------------
# E9 — substrate linearizability
# ----------------------------------------------------------------------
def run_e9_substrate() -> List[ExperimentRow]:
    rows = []

    # Snapshot-from-registers, exhaustively model-checked.
    def updater():
        yield from annotated_update("snap", 2, 0, "x", 1)
        view = yield from annotated_scan("snap", 2)
        return view

    def scanner():
        view = yield from annotated_scan("snap", 2)
        return view

    spec = SystemSpec(snapshot_objects("snap", 2), [updater, scanner])
    checked = 0
    all_linearizable = True
    for execution in Explorer(spec, max_depth=60).executions():
        history = history_from_execution(execution)
        if not is_linearizable(history, AtomicSnapshotSpec(2)):
            all_linearizable = False
            break
        checked += 1
    rows.append(
        ExperimentRow(
            experiment="E9",
            setting="snapshot from registers, 2 procs, exhaustive",
            claimed="linearizable in every execution",
            measured=f"{checked} executions checked",
            ok=all_linearizable,
            detail={"executions": checked},
        )
    )

    # Universal construction of a queue.
    scripts = [
        [("enqueue", ("a",)), ("dequeue", ())],
        [("enqueue", ("b",))],
    ]
    universal = universal_spec(QueueSpec(), scripts)
    ok = True
    sampled = 0
    for seed in range(100):
        execution = universal.run(RandomScheduler(seed))
        history = history_from_execution(execution)
        if not is_linearizable(history, QueueSpec()):
            ok = False
            break
        sampled += 1
    rows.append(
        ExperimentRow(
            experiment="E9",
            setting="universal queue (Herlihy), 2 procs, 100 schedules",
            claimed="linearizable against QueueSpec",
            measured=f"{sampled} schedules checked",
            ok=ok,
        )
    )
    return rows


# ----------------------------------------------------------------------
# E10 — performance envelope
# ----------------------------------------------------------------------
def run_e10_runtime() -> List[ExperimentRow]:
    rows = []
    # Simulator throughput: steps/second on the partition protocol.
    inputs = _letters(24)
    spec = partition_set_consensus_spec(2, 1, inputs)
    start = time.perf_counter()
    total_steps = 0
    runs = 50
    for seed in range(runs):
        total_steps += len(spec.run(RandomScheduler(seed)))
    elapsed = time.perf_counter() - start
    rate = total_steps / elapsed if elapsed else float("inf")
    rows.append(
        ExperimentRow(
            experiment="E10",
            setting=f"partition protocol, 24 procs x {runs} runs",
            claimed="simulator sustains > 10k steps/s",
            measured=f"{rate:,.0f} steps/s ({total_steps} steps, {elapsed:.2f}s)",
            ok=rate > 10_000,
            detail={"steps_per_second": rate},
        )
    )
    # Explorer: executions/second on the 6-process headline check.
    inputs = _letters(6)
    spec = set_consensus_spec(2, 1, inputs)
    explorer = Explorer(spec, max_depth=10)
    start = time.perf_counter()
    count = sum(1 for _ in explorer.executions())
    elapsed = time.perf_counter() - start
    rows.append(
        ExperimentRow(
            experiment="E10",
            setting="explorer on O(2,1) headline (720 schedules)",
            claimed="720 maximal executions",
            measured=f"{count} in {elapsed:.2f}s "
            f"({explorer.stats.steps_replayed} replayed / "
            f"{explorer.stats.steps_on_path} on-path steps, "
            f"{explorer.stats.replay_overhead:.1f}x overhead)",
            ok=count == 720,
            detail={"seconds": elapsed},
        )
    )
    rows.append(
        _audit_headroom_row(
            "E10",
            "state-space audit: O(2,1) headline (720 schedules)",
            set_consensus_spec(2, 1, inputs),
            inputs,
            max_depth=10,
        )
    )
    return rows


# ----------------------------------------------------------------------
# E11 — crash-recovery adversary: a power separation
# ----------------------------------------------------------------------
def run_e11_recovery() -> List[ExperimentRow]:
    """Crash-stop vs crash-recovery separate on leader election.

    Test-and-set election with an announce step is correct under the
    crash-stop adversary (``max_crashes=1``): a crashed loser changes
    nothing, and a crashed winner means not everyone finishes.  Under
    crash-recovery with amnesia (``max_recoveries=1``) the winner can die
    in the window between winning the TAS and announcing, come back with
    its program state wiped, re-run the TAS, read its *own* stale win as
    a loss, and report follower — zero leaders even though every process
    finishes.  Substituting the recoverable TAS (which re-grants the win
    to its recorded owner) restores correctness under the same adversary.
    """
    from repro.algorithms.election import announce_election_spec

    def no_unique_leader(execution) -> bool:
        if not execution.all_done():
            return False
        return list(execution.outputs.values()).count("L") != 1

    rows = []

    # (a) Crash-stop: safe.  One crash, no comebacks.
    explorer = Explorer(announce_election_spec(2), max_crashes=1)
    violations = sum(1 for e in explorer.executions() if no_unique_leader(e))
    rows.append(
        ExperimentRow(
            experiment="E11",
            setting="TAS election, N=2, crash-stop (f=1)",
            claimed="exactly one leader whenever all finish",
            measured=(
                f"{explorer.stats.executions} executions, "
                f"{violations} violations"
            ),
            ok=violations == 0,
            detail={"executions": explorer.stats.executions},
        )
    )

    # (b) Crash-recovery: the same election breaks — the universal claim
    # is refuted, so the experiment *asserts the anomaly exists* (the
    # E3/E6 convention for expected refutations) and archives the first
    # zero-leader execution as a counterexample witness.
    explorer = Explorer(
        announce_election_spec(2), max_crashes=1, max_recoveries=1
    )
    counterexamples = 0
    first = None
    for execution in explorer.executions():
        if no_unique_leader(execution):
            counterexamples += 1
            if first is None:
                first = execution
    witness_path = None
    if first is not None:
        witness_path = _obs_witness.capture(
            first,
            kind=_obs_witness.KIND_COUNTEREXAMPLE,
            source="suite.e11_recovery",
            reason="amnesiac TAS winner re-runs, reads its own stale win "
            "as a loss, and reports follower: zero leaders",
            spec={"builder": "announce-election", "n": 2, "variant": "tas"},
            predicate={"name": "unique-leader-violated"},
            label="E11 crash-recovery refutation: zero-leader anomaly",
        )
    rows.append(
        ExperimentRow(
            experiment="E11",
            setting="TAS election, N=2, crash-recovery (f=1, r=1)",
            claimed="unique-leader claim REFUTED: zero-leader runs exist",
            measured=(
                f"{explorer.stats.executions} executions, "
                f"{counterexamples} counterexamples, "
                f"{explorer.stats.recoveries_injected} recoveries injected"
            ),
            ok=counterexamples > 0,
            detail={
                "executions": explorer.stats.executions,
                "counterexamples": counterexamples,
                "recoveries_injected": explorer.stats.recoveries_injected,
            },
            witness=witness_path,
        )
    )

    # (c) Recoverable TAS under the identical adversary: correctness is
    # restored, because the object re-grants the win to its recorded
    # owner when the amnesiac winner retries.
    explorer = Explorer(
        announce_election_spec(2, variant="recoverable-tas"),
        max_crashes=1,
        max_recoveries=1,
    )
    violations = sum(1 for e in explorer.executions() if no_unique_leader(e))
    rows.append(
        ExperimentRow(
            experiment="E11",
            setting="recoverable-TAS election, N=2, crash-recovery (f=1, r=1)",
            claimed="exactly one leader whenever all finish",
            measured=(
                f"{explorer.stats.executions} executions, "
                f"{violations} violations, "
                f"{explorer.stats.recoveries_injected} recoveries injected"
            ),
            ok=violations == 0,
            detail={"executions": explorer.stats.executions},
        )
    )
    return rows


#: Experiment id -> runner, in report order.
EXPERIMENTS: Dict[str, Callable[[], List[ExperimentRow]]] = {
    "E1": run_e1_consensus,
    "E2": run_e2_set_consensus,
    "E3": run_e3_impossibility,
    "E4": run_e4_transfer,
    "E5": run_e5_hierarchy,
    "E6": run_e6_common2,
    "E7": run_e7_bg,
    "E8": run_e8_subdivision,
    "E9": run_e9_substrate,
    "E10": run_e10_runtime,
    "E11": run_e11_recovery,
}


def run_all(timings: Optional[Dict[str, float]] = None) -> Dict[str, List[ExperimentRow]]:
    """Run the whole suite; returns experiment id -> rows.

    Each experiment runs inside a ``span`` (feeding ``phase_seconds`` in
    the metrics registry and ``span_*`` events to any attached sink).
    Pass a dict as ``timings`` to also receive per-experiment wall times,
    keyed by experiment id.

    Experiments are isolated: a runner that raises collapses to one ERROR
    row and the suite continues.  Under an active budget
    (:mod:`repro.faults.budget`), experiments the budget no longer covers
    are skipped as INCONCLUSIVE, and rows produced by an experiment
    *during which* the budget ran out are downgraded to INCONCLUSIVE —
    a partial run can produce spurious failures, so neither its ✓ nor
    its ✗ is trustworthy.
    """
    results: Dict[str, List[ExperimentRow]] = {}
    budget = get_active_budget()
    total = len(EXPERIMENTS)
    for index, (experiment_id, runner) in enumerate(EXPERIMENTS.items()):
        if _obs_events.is_enabled():
            # Suite telemetry pulse: drives live /status ("E4, 3/10 done")
            # and the suite-progress gauges; harmless in archived traces.
            _obs_events.emit(
                "suite_progress",
                experiment=experiment_id,
                index=index,
                total=total,
                completed=index,
                state="running",
            )
        if budget is not None and budget.exhausted_reason() is not None:
            results[experiment_id] = [
                inconclusive_row(
                    experiment_id,
                    "(skipped)",
                    "experiment runs",
                    f"budget exhausted before start: {budget.exhausted_reason()}",
                )
            ]
            if timings is not None:
                timings[experiment_id] = 0.0
            continue
        with span(experiment_id, kind="experiment") as phase:
            try:
                rows = runner()
            except ExplorationLimitError as limit:
                rows = [
                    inconclusive_row(
                        experiment_id,
                        "(cut short)",
                        "experiment completes",
                        str(limit),
                    )
                ]
            except Exception as error:  # noqa: BLE001 — isolation is the point
                if budget is not None and budget.exhausted_reason() is not None:
                    rows = [
                        inconclusive_row(
                            experiment_id,
                            "(cut short)",
                            "experiment completes",
                            f"budget exhausted mid-run: {budget.exhausted_reason()}",
                        )
                    ]
                else:
                    rows = [error_row(experiment_id, "(crashed)", error)]
        if budget is not None and budget.exhausted_reason() is not None:
            rows = [_downgrade(row, budget.exhausted_reason()) for row in rows]
        results[experiment_id] = rows
        if _obs_events.is_enabled():
            _obs_events.emit(
                "suite_progress",
                experiment=experiment_id,
                index=index,
                total=total,
                completed=index + 1,
                state="done",
                verdict=overall_verdict(rows).value,
            )
        if timings is not None:
            timings[experiment_id] = phase.seconds
    return results


def _downgrade(row: ExperimentRow, reason: str) -> ExperimentRow:
    """Mark a row produced under an exhausted budget as INCONCLUSIVE
    (ERROR rows keep their severity)."""
    if row.effective_verdict is Verdict.ERROR:
        return row
    row.verdict = Verdict.INCONCLUSIVE
    row.measured = f"{row.measured} [budget: {reason}]"
    return row


def timing_summary(timings: Dict[str, float]) -> str:
    """Render per-experiment wall times as a small aligned table."""
    if not timings:
        return "(no timings recorded)"
    total = sum(timings.values())
    lines = ["experiment  seconds  share"]
    for experiment_id, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"{experiment_id:<10}  {seconds:7.2f}  {share:4.1f}%")
    lines.append(f"{'total':<10}  {total:7.2f}")
    return "\n".join(lines)
