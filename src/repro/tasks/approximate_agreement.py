"""The ε-approximate agreement task.

Processes start with real-valued inputs and must output values that are

* **within ε of each other** (ε-agreement), and
* **within the range of the inputs** (validity).

Approximate agreement is the flagship *sub-consensus* task that is
register-solvable for any number of processes — the positive counterpart
to consensus's impossibility, and the standard illustration that "life
below consensus" has genuine content even before the paper adds its
set-consensus strata.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.tasks.task import Task


class ApproximateAgreementTask(Task):
    """ε-agreement + range validity over numeric inputs."""

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.name = f"{epsilon}-approximate-agreement"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        if not inputs:
            return
        low, high = min(inputs.values()), max(inputs.values())
        for pid, value in outputs.items():
            self._require(
                isinstance(value, (int, float)),
                f"p{pid} output non-numeric {value!r}",
            )
            self._require(
                low <= value <= high,
                f"p{pid} output {value} outside input range [{low}, {high}]",
            )
        values = list(outputs.values())
        if values:
            spread = max(values) - min(values)
            self._require(
                spread <= self.epsilon + 1e-12,
                f"outputs spread {spread} exceeds epsilon {self.epsilon}",
            )
