"""Consensus and election tasks."""

from __future__ import annotations

from typing import Any, Dict

from repro.tasks.task import Task


class ConsensusTask(Task):
    """The consensus task.

    * **Validity** — every output is the input of some participant.
    * **Agreement** — all outputs are equal.
    """

    name = "consensus"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        legal = set(inputs.values())
        for pid, value in outputs.items():
            self._require(
                value in legal,
                f"p{pid} decided {value!r}, which no participant proposed",
            )
        distinct = set(outputs.values())
        self._require(
            len(distinct) <= 1,
            f"agreement violated: {len(distinct)} distinct decisions {sorted(map(repr, distinct))}",
        )


class ElectionTask(Task):
    """The election task: consensus where each participant proposes its own
    identifier, so the decided value must additionally be the id of a
    participant."""

    name = "election"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        for pid, value in inputs.items():
            self._require(
                value == pid,
                f"election requires p{pid} to propose its own id, proposed {value!r}",
            )
        ConsensusTask().validate(inputs, outputs)
        for pid, value in outputs.items():
            self._require(
                value in inputs,
                f"p{pid} elected {value!r}, which is not a participant",
            )
