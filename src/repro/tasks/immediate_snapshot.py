"""The one-shot immediate snapshot task (Borowsky–Gafni).

Each participant writes a value and obtains a *view* — a set of
(pid, value) pairs — such that:

* **self-inclusion** — a process's own pair is in its view;
* **containment** — any two views are ordered by inclusion;
* **immediacy** — if j's pair is in i's view, then j's view is a subset
  of i's view.

Immediate snapshot is the combinatorial backbone of the simulation-based
lower bounds the paper builds on (it is the one-round structure of the
standard chromatic subdivision), and it is register-solvable — so, like
snapshots, it adds convenience but no synchronization power.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Tuple

from repro.tasks.task import Task

View = FrozenSet[Tuple[int, Any]]


class ImmediateSnapshotTask(Task):
    """Validator for one-shot immediate snapshot outputs.

    Outputs must be sets (any iterable of (pid, value) pairs is accepted
    and frozen) drawn from the participants' actual inputs.
    """

    name = "immediate-snapshot"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        views: Dict[int, View] = {}
        for pid, raw in outputs.items():
            view = frozenset(raw)
            views[pid] = view
            self._require(
                all(q in inputs and inputs[q] == v for q, v in view),
                f"p{pid}'s view contains pairs nobody wrote: {sorted(view)}",
            )
            self._require(
                (pid, inputs[pid]) in view,
                f"self-inclusion violated: p{pid} missing from its own view",
            )
        pids = sorted(views)
        for i in pids:
            for j in pids:
                if i == j:
                    continue
                vi, vj = views[i], views[j]
                self._require(
                    vi <= vj or vj <= vi,
                    f"containment violated: views of p{i} and p{j} are "
                    "incomparable",
                )
                if (j, inputs[j]) in vi:
                    self._require(
                        views[j] <= vi,
                        f"immediacy violated: p{i} saw p{j} but p{j}'s view "
                        f"is not contained in p{i}'s",
                    )
