"""k-set consensus, k-set election, and strong k-set election tasks.

k-set consensus (Chaudhuri 1990) weakens consensus agreement to
*k-agreement*: at most k distinct outputs.  The 1-set consensus task is
consensus.  Election variants fix inputs to the proposers' own identifiers;
strong set election adds the *self-election* property used by object
constructions built on top of set election.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.tasks.task import Task


class KSetConsensusTask(Task):
    """The k-set consensus task.

    * **Validity** — every output is the input of some participant.
    * **k-agreement** — at most ``k`` distinct outputs.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k-set consensus needs k >= 1")
        self.k = k
        self.name = f"{k}-set-consensus"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        legal = set(inputs.values())
        for pid, value in outputs.items():
            self._require(
                value in legal,
                f"p{pid} decided {value!r}, which no participant proposed",
            )
        distinct = set(outputs.values())
        self._require(
            len(distinct) <= self.k,
            f"k-agreement violated: {len(distinct)} distinct decisions "
            f"(allowed {self.k})",
        )


class KSetElectionTask(KSetConsensusTask):
    """k-set election: k-set consensus on the participants' own ids."""

    def __init__(self, k: int):
        super().__init__(k)
        self.name = f"{k}-set-election"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        for pid, value in inputs.items():
            self._require(
                value == pid,
                f"set election requires p{pid} to propose its own id, "
                f"proposed {value!r}",
            )
        super().validate(inputs, outputs)
        for pid, value in outputs.items():
            self._require(
                value in inputs,
                f"p{pid} elected {value!r}, which is not a participant",
            )


class StrongKSetElectionTask(KSetElectionTask):
    """k-strong set election: k-set election plus

    * **Self-election** — if some process decides ``j``, then ``j`` decides
      ``j``.

    Self-election is checked over the processes that have decided: a
    decided-upon leader that has itself decided must have decided itself.
    (A leader that has not yet produced an output does not falsify the
    property — it is still obligated to elect itself when it finishes.)
    """

    def __init__(self, k: int):
        super().__init__(k)
        self.name = f"{k}-strong-set-election"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        super().validate(inputs, outputs)
        for pid, leader in outputs.items():
            if leader in outputs:
                self._require(
                    outputs[leader] == leader,
                    f"self-election violated: p{pid} elected {leader}, but "
                    f"p{leader} elected {outputs[leader]}",
                )
