"""The task abstraction.

A task relates *inputs* (one per participating process) to allowed
*output collections*.  Validators receive the inputs of all participants
and the outputs of the processes that produced one (in a wait-free run all
participants eventually do, but validity must hold in every prefix, so
validators accept partial output sets).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import TaskViolationError


class Task:
    """Base class for task specifications.

    Subclasses override :meth:`validate`, raising
    :class:`~repro.errors.TaskViolationError` with a precise message when
    the output collection is not allowed.
    """

    name = "task"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        """Raise :class:`TaskViolationError` if ``outputs`` is not an
        allowed (partial) output collection for ``inputs``.

        Parameters
        ----------
        inputs:
            ``pid -> input value`` for every participating process.
        outputs:
            ``pid -> output value`` for the processes that have decided.
        """
        raise NotImplementedError

    def check(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> bool:
        """Boolean convenience wrapper over :meth:`validate`."""
        try:
            self.validate(inputs, outputs)
        except TaskViolationError:
            return False
        return True

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise TaskViolationError(f"{self.name}: {message}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
