"""Task-solvability checking: run a protocol, validate its outputs.

A protocol *solves* a task wait-free when, under **every** scheduler, every
process that keeps taking steps outputs, and the collective outputs satisfy
the task.  These helpers check that claim three ways:

* :func:`run_task_protocol` — one run under a given scheduler;
* :func:`check_task_random_schedules` — many seeded random adversaries;
* :func:`check_task_all_schedules` — *all* adversaries, via the exhaustive
  explorer (small systems only).

Validation is applied to every execution's final outputs; because validity
properties are closed under subsets for the tasks here, checking maximal
executions of a wait-free protocol also covers all prefixes in which fewer
processes have decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from repro.errors import TaskViolationError
from repro.faults.budget import get_active_budget
from repro.faults.verdict import Verdict
from repro.obs import events as _obs_events
from repro.runtime.execution import Execution
from repro.runtime.explorer import Explorer
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import RandomScheduler, Scheduler
from repro.runtime.system import SystemSpec
from repro.tasks.task import Task


@dataclass
class SolvabilityReport:
    """Outcome of a solvability check.

    ``ok`` is True iff every checked execution terminated with valid
    outputs.  On failure, ``counterexample`` holds a replayable witness and
    ``reason`` the validator's message.  ``verdict`` is the three-valued
    refinement (see :mod:`repro.faults.verdict`): a budget-interrupted
    check comes back ``INCONCLUSIVE`` with ``ok`` still True — nothing was
    refuted, but nothing was proved either.

    When a :mod:`repro.obs.witness` store is active, the counterexample
    is also archived as a ``repro-witness/1`` bundle and
    ``witness_path`` records where — the path the experiment suite
    threads into its rows and reports.
    """

    ok: bool
    executions_checked: int = 0
    max_steps_per_process: int = 0
    distinct_output_counts: Dict[int, int] = field(default_factory=dict)
    counterexample: Optional[Execution] = None
    reason: str = ""
    verdict: Verdict = Verdict.PROVED
    witness_path: Optional[str] = None

    def record(self, execution: Execution) -> None:
        self.executions_checked += 1
        self.max_steps_per_process = max(
            self.max_steps_per_process, execution.max_steps_per_process()
        )
        n = len(execution.distinct_outputs())
        self.distinct_output_counts[n] = self.distinct_output_counts.get(n, 0) + 1


def _capture_counterexample(
    execution: Execution, source: str, reason: str
) -> Optional[str]:
    """Archive a refuting execution through the active witness store
    (``None`` when capture is off).  Lazy import: :mod:`repro.obs.witness`
    depends on the runtime layer this module sits on."""
    from repro.obs import witness as _obs_witness

    if _obs_witness.get_active_store() is None:
        return None
    return _obs_witness.capture(
        execution, kind="counterexample", source=source, reason=reason
    )


def _validate_execution(
    task: Task,
    inputs: Dict[int, Any],
    execution: Execution,
    require_wait_free: bool,
) -> Optional[str]:
    """Return an error message if the execution is bad, else None."""
    problem = _classify_execution(task, inputs, execution, require_wait_free)
    if _obs_events.is_enabled():
        _obs_events.emit(
            "run_verdict",
            verdict="ok" if problem is None else "violation",
            steps=len(execution.steps),
        )
    return problem


def _classify_execution(
    task: Task,
    inputs: Dict[int, Any],
    execution: Execution,
    require_wait_free: bool,
) -> Optional[str]:
    if require_wait_free:
        for pid, status in execution.statuses.items():
            if status not in (ProcessStatus.DONE, ProcessStatus.CRASHED):
                return (
                    f"process {pid} ended in status {status.value}; a "
                    "wait-free protocol must terminate in every execution"
                )
    try:
        task.validate(inputs, execution.outputs)
    except TaskViolationError as violation:
        return str(violation)
    return None


def run_task_protocol(
    spec: SystemSpec,
    task: Task,
    inputs: Dict[int, Any],
    scheduler: Scheduler,
    max_steps: int = 100_000,
    require_wait_free: bool = True,
) -> Execution:
    """Run once and validate; raises :class:`TaskViolationError` on failure."""
    execution = spec.run(scheduler, max_steps=max_steps)
    problem = _validate_execution(task, inputs, execution, require_wait_free)
    if problem is not None:
        raise TaskViolationError(problem)
    return execution


def check_task_random_schedules(
    spec: SystemSpec,
    task: Task,
    inputs: Dict[int, Any],
    seeds: Iterable[int] = range(100),
    max_steps: int = 100_000,
    require_wait_free: bool = True,
) -> SolvabilityReport:
    """Validate the protocol under one random adversary per seed.

    Budget-aware: when the process-wide active budget runs out mid-sweep,
    the partial execution of the interrupted run is *not* validated (it
    can look like a spurious termination failure) and the report comes
    back ``INCONCLUSIVE`` for the seeds not reached.
    """
    report = SolvabilityReport(ok=True)
    budget = get_active_budget()
    for seed in seeds:
        if budget is not None and budget.exhausted_reason() is not None:
            report.verdict = Verdict.INCONCLUSIVE
            report.reason = (
                f"budget exhausted after {report.executions_checked} seeds: "
                f"{budget.exhausted_reason()}"
            )
            return report
        execution = spec.run(RandomScheduler(seed), max_steps=max_steps)
        if budget is not None and budget.exhausted_reason() is not None:
            # This run was cut short by the budget — its live processes are
            # an artifact of the interruption, not a protocol failure.
            report.verdict = Verdict.INCONCLUSIVE
            report.reason = (
                f"budget exhausted during seed {seed}: "
                f"{budget.exhausted_reason()}"
            )
            return report
        problem = _validate_execution(task, inputs, execution, require_wait_free)
        report.record(execution)
        if problem is not None:
            report.ok = False
            report.verdict = Verdict.REFUTED
            report.counterexample = execution
            report.reason = f"seed {seed}: {problem}"
            report.witness_path = _capture_counterexample(
                execution, "solvability.random_schedules", problem
            )
            return report
    return report


def check_task_all_schedules(
    spec: SystemSpec,
    task: Task,
    inputs: Dict[int, Any],
    max_depth: int = 200,
    require_wait_free: bool = True,
) -> SolvabilityReport:
    """Validate the protocol under **every** scheduler (exhaustive).

    This is the strongest evidence short of a proof: for the given inputs,
    the protocol solves the task in all executions.  Under an exhausted
    budget the enumeration stops early and the verdict degrades to
    ``INCONCLUSIVE`` (a found counterexample is still ``REFUTED`` — partial
    exploration is sound for refutation).
    """
    report = SolvabilityReport(ok=True)
    explorer = Explorer(spec, max_depth=max_depth)
    for execution in explorer.executions():
        problem = _validate_execution(task, inputs, execution, require_wait_free)
        report.record(execution)
        if problem is not None:
            report.ok = False
            report.verdict = Verdict.REFUTED
            report.counterexample = execution
            report.reason = problem
            report.witness_path = _capture_counterexample(
                execution, "solvability.all_schedules", problem
            )
            return report
    if explorer.interrupted is not None:
        report.verdict = Verdict.INCONCLUSIVE
        report.reason = explorer.interrupted
    return report
