"""Distributed tasks and their validators.

A *task* specifies which combinations of output values are allowed, given
the inputs of the participating processes.  Objects are compared throughout
the paper by which tasks they can solve wait-free, so tasks (not objects)
are the currency of "synchronization power".
"""

from repro.tasks.task import Task
from repro.tasks.consensus import ConsensusTask, ElectionTask
from repro.tasks.set_consensus import (
    KSetConsensusTask,
    KSetElectionTask,
    StrongKSetElectionTask,
)
from repro.tasks.renaming import RenamingTask
from repro.tasks.immediate_snapshot import ImmediateSnapshotTask
from repro.tasks.approximate_agreement import ApproximateAgreementTask
from repro.tasks.solvability import (
    SolvabilityReport,
    check_task_all_schedules,
    check_task_random_schedules,
    run_task_protocol,
)

__all__ = [
    "Task",
    "ConsensusTask",
    "ElectionTask",
    "KSetConsensusTask",
    "KSetElectionTask",
    "StrongKSetElectionTask",
    "RenamingTask",
    "ImmediateSnapshotTask",
    "ApproximateAgreementTask",
    "SolvabilityReport",
    "run_task_protocol",
    "check_task_all_schedules",
    "check_task_random_schedules",
]
