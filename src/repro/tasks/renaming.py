"""The renaming task.

Participants start with distinct names from a large namespace and must
adopt distinct names from a small target namespace ``{0, ..., M-1}``.
Wait-free renaming into ``2k - 1`` names for ``k`` participants is possible
from registers (Attiya et al.); the splitter-grid algorithm implemented in
:mod:`repro.algorithms.renaming` achieves ``k(k+1)/2`` names, which suffices
for the constructions in this repository (any finite target namespace does).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.tasks.task import Task


class RenamingTask(Task):
    """Renaming into ``target_size`` names.

    * **Uniqueness** — no two outputs are equal.
    * **Range** — every output lies in ``{0, ..., target_size - 1}``.
    * (Inputs must be pairwise distinct for the task to be well-posed.)
    """

    def __init__(self, target_size: int):
        if target_size < 1:
            raise ValueError("target namespace must be non-empty")
        self.target_size = target_size
        self.name = f"renaming<{target_size}>"

    def validate(self, inputs: Dict[int, Any], outputs: Dict[int, Any]) -> None:
        self._require(
            len(set(inputs.values())) == len(inputs),
            "input names must be pairwise distinct",
        )
        for pid, new_name in outputs.items():
            self._require(
                isinstance(new_name, int) and 0 <= new_name < self.target_size,
                f"p{pid} took name {new_name!r} outside "
                f"[0, {self.target_size})",
            )
        values = list(outputs.values())
        self._require(
            len(set(values)) == len(values),
            f"names not distinct: {sorted(values)}",
        )
