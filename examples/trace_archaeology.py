#!/usr/bin/env python3
"""Counterexample archaeology: find, archive, and replay a schedule.

Workflow every model-checking user ends up needing:

1. the explorer finds an execution with a property of interest (here:
   the adversarial schedule that drives the 2-consensus baseline to its
   worst case at N = 6 — the Common2 comparison point);
2. the trace is archived as JSON (decisions only — tiny, and replay
   recomputes everything);
3. reloading replays it against a fresh system and verifies a
   fingerprint, so silent drift between the archive and the code is
   impossible (demonstrated by tampering with the file).

Run: ``python examples/trace_archaeology.py``
"""

import json
import tempfile
from pathlib import Path

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec,
)
from repro.errors import ReproError
from repro.runtime.explorer import find_execution
from repro.runtime.trace_io import load_trace_json, trace_to_json

INPUTS = ["a", "b", "c", "d", "e", "f"]


def fresh_spec():
    return partition_set_consensus_spec(2, INPUTS)


def main() -> None:
    print("== 1. Hunt: worst-case schedule for the 2-consensus baseline ==")
    witness = find_execution(
        fresh_spec(),
        lambda e: len(e.distinct_outputs()) == 3,
        max_depth=10,
    )
    print(f"  found: schedule {witness.schedule} -> outputs {witness.outputs}")

    print("\n== 2. Archive ==")
    payload = trace_to_json(witness, label="baseline forced to 3 at N=6", indent=2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "witness.json"
        path.write_text(payload)
        print(f"  wrote {path.stat().st_size} bytes to {path.name}")

        print("\n== 3. Replay against a fresh system ==")
        replayed = load_trace_json(fresh_spec(), path.read_text())
        assert replayed.outputs == witness.outputs
        print(f"  replay reproduced {len(replayed.distinct_outputs())} distinct decisions ✓")

        print("\n== 4. Tamper detection ==")
        doctored = json.loads(payload)
        doctored["decisions"][0][0] = (doctored["decisions"][0][0] + 1) % 6
        try:
            load_trace_json(fresh_spec(), json.dumps(doctored))
        except ReproError as err:
            # Either the replay itself breaks (illegal decision) or the
            # fingerprint check fires — both are library errors.
            print(f"  doctored trace rejected: {type(err).__name__}: {err}")
        else:
            raise AssertionError("tampering went unnoticed")


if __name__ == "__main__":
    main()
