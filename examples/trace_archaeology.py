#!/usr/bin/env python3
"""Counterexample archaeology: find, archive, shrink, and explain a schedule.

Workflow every model-checking user ends up needing:

1. the explorer finds an execution with a property of interest (here:
   the adversarial schedule that drives the 2-consensus baseline to its
   worst case at N = 6 — the Common2 comparison point);
2. the trace is archived as JSON (decisions only — tiny, and replay
   recomputes everything);
3. reloading replays it against a fresh system and verifies a
   fingerprint, so silent drift between the archive and the code is
   impossible (demonstrated by tampering with the file);
4. the same hunt with a witness store active archives the deciding
   execution as a self-describing ``repro-witness/1`` bundle — spec and
   predicate provenance ride along, so nothing else needs to remember
   how to rebuild the system;
5. ``repro explain`` (driven here via its library entry point) replays
   the bundle, ddmin-shrinks the schedule to a 1-minimal core, and
   renders the space-time lane diagram plus the step narrative.

Run: ``python examples/trace_archaeology.py [--out DIR]``

With ``--out DIR`` the witness bundle survives the run (CI uploads it
as a build artifact); by default everything lands in a temp directory.
"""

import argparse
import json
import tempfile
from pathlib import Path

from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec,
)
from repro.errors import ReproError
from repro.obs.explain import run_explain
from repro.obs.witness import capture_witnesses, witness_context
from repro.runtime.explorer import find_execution
from repro.runtime.trace_io import load_trace_json, trace_to_json

INPUTS = ["a", "b", "c", "d", "e", "f"]


def fresh_spec():
    return partition_set_consensus_spec(2, INPUTS)


def hunt():
    return find_execution(
        fresh_spec(),
        lambda e: len(e.distinct_outputs()) == 3,
        max_depth=10,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="write the witness bundle here (default: a temp directory)",
    )
    args = parser.parse_args()

    print("== 1. Hunt: worst-case schedule for the 2-consensus baseline ==")
    witness = hunt()
    print(f"  found: schedule {witness.schedule} -> outputs {witness.outputs}")

    print("\n== 2. Archive ==")
    payload = trace_to_json(witness, label="baseline forced to 3 at N=6", indent=2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "witness.json"
        path.write_text(payload)
        print(f"  wrote {path.stat().st_size} bytes to {path.name}")

        print("\n== 3. Replay against a fresh system ==")
        replayed = load_trace_json(fresh_spec(), path.read_text())
        assert replayed.outputs == witness.outputs
        print(f"  replay reproduced {len(replayed.distinct_outputs())} distinct decisions ✓")

        print("\n== 4. Tamper detection ==")
        doctored = json.loads(payload)
        doctored["decisions"][0][0] = (doctored["decisions"][0][0] + 1) % 6
        try:
            load_trace_json(fresh_spec(), json.dumps(doctored))
        except ReproError as err:
            # Either the replay itself breaks (illegal decision) or the
            # fingerprint check fires — both are library errors.
            print(f"  doctored trace rejected: {type(err).__name__}: {err}")
        else:
            raise AssertionError("tampering went unnoticed")

        print("\n== 5. Witness store: capture with provenance ==")
        out_dir = args.out or str(Path(tmp) / "witnesses")
        with capture_witnesses(out_dir) as store, witness_context(
            spec={"builder": "n-consensus-partition", "n": 2, "inputs": INPUTS},
            predicate={"name": "distinct-outputs-at-least", "count": 3},
            label="archaeology: baseline forced to 3 at N=6",
        ):
            # find_execution routes through Explorer.find, whose hook
            # archives the deciding execution into the active store.
            hunt()
        assert store.captured, "the hunt should have produced a witness"
        bundle = store.captured[0]
        print(f"  bundle: {bundle}")

        print("\n== 6. Shrink + explain (what `repro explain` does) ==")
        code = run_explain(bundle, shrink=True)
        assert code == 0, f"explain exited {code}"


if __name__ == "__main__":
    main()
