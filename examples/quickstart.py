#!/usr/bin/env python3
"""Quickstart: meet O(n, k), the deterministic object beyond consensus.

This walks the library's core loop in five minutes:

1. build a deterministic O(2, 1) object (consensus number 2);
2. run its headline protocol — 6 processes, (6, 2)-set consensus —
   under a random adversary;
3. model-check the 2-agreement claim under *every* schedule;
4. compare with the best 2-consensus objects can do (3 values).

Run: ``python examples/quickstart.py``
"""

from repro import (
    FamilyMember,
    KSetConsensusTask,
    RandomScheduler,
    SoloScheduler,
    check_task_all_schedules,
)
from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec as two_consensus_baseline,
)
from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import set_consensus_spec


def main() -> None:
    member = FamilyMember(n=2, k=1)
    print("The object:")
    print(" ", member.describe())
    print()

    inputs = ["ada", "bob", "cyd", "dan", "eve", "fay"]
    spec = set_consensus_spec(member.n, member.k, inputs)

    print("One run under a random adversary (seed 42):")
    execution = spec.run(RandomScheduler(42))
    for pid in sorted(execution.outputs):
        print(f"  p{pid} proposed {inputs[pid]!r:7} decided {execution.outputs[pid]!r}")
    print(f"  distinct decisions: {len(execution.distinct_outputs())} (claim: <= 2)")
    print()

    print("Model-checking the claim over ALL schedules:")
    report = check_task_all_schedules(
        set_consensus_spec(member.n, member.k, inputs),
        KSetConsensusTask(2),
        inputs_dict(inputs),
    )
    print(
        f"  {report.executions_checked} maximal executions checked — "
        f"{'every one satisfied 2-agreement' if report.ok else report.reason}"
    )
    print(f"  decision-count histogram: {dict(sorted(report.distinct_output_counts.items()))}")
    print()

    print("What 2-consensus objects (queue, stack, TAS, ...) can do at N=6:")
    baseline = two_consensus_baseline(2, inputs)
    forced = baseline.run(SoloScheduler([0, 2, 4, 1, 3, 5]))
    print(
        f"  partition protocol, solo adversary: "
        f"{len(forced.distinct_outputs())} distinct decisions "
        "(ceil(6/2) = 3 — provably unbeatable for them)"
    )
    print()
    print(
        "Same consensus number, different power: that is the paper's "
        "refutation of the consensus hierarchy's precision (and of Common2)."
    )


if __name__ == "__main__":
    main()
