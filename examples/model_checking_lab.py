#!/usr/bin/env python3
"""The proof tools, hands on (experiments E3/E9 as a lab session).

Four demonstrations of the analysis layer:

1. exhaustively refute a plausible-looking register-only consensus
   protocol (the FLP/Herlihy phenomenon) and print the fatal schedule;
2. walk a *correct* TAS-based protocol to its critical configuration and
   inspect the pending operations (they meet on the TAS object);
3. run commute-or-overwrite certificates across the object zoo;
4. model-check linearizability of the register-based snapshot.

Run: ``python examples/model_checking_lab.py``
"""

from repro import (
    AtomicSnapshotSpec,
    RegisterSpec,
    commute_or_overwrite_certificate,
    consensus_counterexample,
    find_critical_configuration,
    history_from_execution,
    invoke,
    is_linearizable,
)
from repro.algorithms.helpers import build_spec
from repro.algorithms.snapshot_impl import (
    annotated_scan,
    annotated_update,
    snapshot_objects,
)
from repro.core.family import HierarchyObjectSpec
from repro.objects.queue_stack import QueueSpec
from repro.objects.rmw import SwapSpec, TestAndSetSpec
from repro.objects.sticky import StickyRegisterSpec
from repro.runtime.explorer import Explorer
from repro.runtime.system import SystemSpec


def demo_flp() -> None:
    print("== 1. Registers cannot do consensus: automatic refutation ==")

    def naive(pid, value):
        yield invoke(f"v{pid}", "write", value)
        other = yield invoke(f"v{1 - pid}", "read")
        return value if other is None else min(value, other)

    spec = build_spec({"v0": RegisterSpec(), "v1": RegisterSpec()}, naive, ["b", "a"])
    witness = consensus_counterexample(spec, {0: "b", 1: "a"})
    print("  protocol: write own value, read the other, take the min")
    print(f"  fatal schedule found: pids {witness.schedule}")
    replay = spec.replay(witness.decisions).finalize()
    print(f"  outputs there: {replay.outputs}  <- disagreement\n")


def demo_critical_configuration() -> None:
    print("== 2. A correct protocol's critical configuration ==")

    def tas_consensus(pid, value):
        yield invoke(f"v{pid}", "write", value)
        lost = yield invoke("t", "test_and_set")
        if lost == 0:
            return value
        other = yield invoke(f"v{1 - pid}", "read")
        return other

    spec = build_spec(
        {"t": TestAndSetSpec(), "v0": RegisterSpec(), "v1": RegisterSpec()},
        tas_consensus,
        ["x", "y"],
    )
    report = find_critical_configuration(spec)
    print(f"  reached after prefix {list(report.prefix)}")
    print(f"  valence there: {sorted(report.valence)} (bivalent)")
    system = spec.replay(report.prefix)
    for pid in system.enabled_pids():
        print(f"  p{pid} poised on: {system.pending_operation(pid)}")
    print("  both pending steps hit the TAS — the synchronization kernel.\n")


def demo_certificates() -> None:
    print("== 3. Commute-or-overwrite certificates across the zoo ==")
    cases = [
        ("register", RegisterSpec(), [("write", ("a",)), ("write", ("b",)), ("read", ())]),
        ("TAS", TestAndSetSpec(), [("test_and_set", ()), ("read", ())]),
        ("swap", SwapSpec(), [("swap", ("a",)), ("swap", ("b",))]),
        ("sticky register", StickyRegisterSpec(), [("propose", ("a",)), ("propose", ("b",))]),
        (
            "O(2,1)",
            HierarchyObjectSpec(2, 1),
            [("invoke", (0, 0, "a")), ("invoke", (0, 1, "b")), ("invoke", (1, 0, "c"))],
        ),
    ]
    for name, spec, ops in cases:
        report = commute_or_overwrite_certificate(spec, ops, max_witnesses=1)
        print(f"  {name:15s} {report.summary()}")
        for witness in report.witnesses:
            print(f"    e.g. {witness}")
    print()


def demo_snapshot_linearizability() -> None:
    print("== 4. Snapshot-from-registers is linearizable: model check ==")

    def updater():
        yield from annotated_update("snap", 2, 0, "x", 1)
        view = yield from annotated_scan("snap", 2)
        return view

    def scanner():
        view = yield from annotated_scan("snap", 2)
        return view

    spec = SystemSpec(snapshot_objects("snap", 2), [updater, scanner])
    explorer = Explorer(spec, max_depth=60)
    checked = 0
    for execution in explorer.executions():
        history = history_from_execution(execution)
        assert is_linearizable(history, AtomicSnapshotSpec(2))
        checked += 1
    print(f"  {checked} executions, every history linearizable.")
    print("  (Try breaking the algorithm — remove the double collect — and")
    print("   this loop will hand you the violating schedule.)")


def main() -> None:
    demo_flp()
    demo_critical_configuration()
    demo_certificates()
    demo_snapshot_linearizability()


if __name__ == "__main__":
    main()
