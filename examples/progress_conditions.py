#!/usr/bin/env python3
"""Progress conditions, measured: wait-free vs obstruction-free vs stuck.

The paper's hierarchy is about *wait-free* power; this demo shows why the
progress condition is part of the statement.  Three consensus-flavoured
protocols, three verdicts from the auditors:

1. O(2,1) group consensus — wait-free, with an exact step bound;
2. obstruction-free consensus from registers (adopt-commit rounds) —
   safe always, but the auditor exhibits a contention livelock;
3. safe agreement — wait-free *except* its unsafe window: refuted with a
   starvation witness even without crashes.

Run: ``python examples/progress_conditions.py``
"""

from repro.algorithms.obstruction_free import obstruction_free_spec
from repro.algorithms.safe_agreement import consensus_spec as safe_agreement_spec
from repro.algorithms.set_consensus_from_family import consensus_spec
from repro.analysis.wait_freedom import audit_wait_freedom
from repro.runtime.explorer import find_execution


def verdict(title, report):
    print(f"== {title} ==")
    print(f"  {report.summary()}")
    if not report.wait_free and report.witness is not None:
        print(f"  witness schedule (first 20 pids): {report.witness.schedule[:20]}")
    print()


def main() -> None:
    verdict(
        "1. O(2,1) group consensus (2 processes)",
        audit_wait_freedom(consensus_spec(2, 1, ["a", "b"]), max_depth=10),
    )

    verdict(
        "2. obstruction-free consensus from registers (2 rounds budget)",
        audit_wait_freedom(obstruction_free_spec(["a", "b"], max_rounds=2), max_depth=60),
    )
    # The budgeted protocol *terminates* (returning None on livelock);
    # the interesting exhibit is the undecided run:
    livelock = find_execution(
        obstruction_free_spec(["a", "b"], max_rounds=2),
        lambda e: any(v is None for v in e.outputs.values()),
        max_depth=60,
    )
    print(
        "  contention livelock exists: a schedule where the round budget "
        f"expires undecided -> outputs {livelock.outputs}\n"
        "  (solo, the same protocol decides in one round — that is "
        "obstruction-freedom.)\n"
    )

    verdict(
        "3. safe agreement (2 participants)",
        audit_wait_freedom(safe_agreement_spec(2, ["a", "b"]), max_depth=25),
    )
    print(
        "Safe agreement's refusal is the feature: its unsafe window is the\n"
        "price of BG-simulation's crash containment — see "
        "examples/bg_simulation_demo.py."
    )


if __name__ == "__main__":
    main()
