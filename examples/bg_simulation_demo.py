#!/usr/bin/env python3
"""The Borowsky–Gafni simulation, live (experiment E7 as a demo).

Two simulators jointly run a 3-process full-information protocol.  We
watch three scenarios:

1. a clean run — all three simulated processes complete, and both
   simulators agree on every simulated transition;
2. a simulator crash *outside* any unsafe section — nothing is lost;
3. a simulator crash *inside* a safe-agreement unsafe section — exactly
   one simulated process blocks, everything else proceeds (the BG
   containment that makes the simulation a lower-bound machine).

Run: ``python examples/bg_simulation_demo.py``
"""

from repro.algorithms.bg_simulation import simulation_spec, write_scan_protocol
from repro.runtime.scheduler import CrashingScheduler, RoundRobinScheduler


def merged_decisions(execution):
    merged = {}
    for result in execution.outputs.values():
        merged.update(result)
    return merged


def run_scenario(title, crash_at=None):
    print(f"== {title} ==")
    protocol = write_scan_protocol(3)
    spec = simulation_spec(protocol, n_simulators=2, inputs=["a", "b", "c"])
    scheduler = RoundRobinScheduler()
    if crash_at is not None:
        scheduler = CrashingScheduler(scheduler, crash_at)
    execution = spec.run(scheduler, max_steps=40_000)
    for sim_id, status in sorted(execution.statuses.items()):
        witnessed = execution.outputs.get(sim_id, {})
        print(f"  simulator {sim_id}: {status.value:8s} witnessed {witnessed}")
    decisions = merged_decisions(execution)
    print(f"  simulated processes completed: {len(decisions)}/3 -> {decisions}")
    blocked = 3 - len(decisions)
    print(f"  blocked simulated processes: {blocked}\n")
    return blocked


def main() -> None:
    blocked = run_scenario("Scenario 1: clean run")
    assert blocked == 0

    blocked = run_scenario(
        "Scenario 2: simulator 0 crashes very late", crash_at={0: 200}
    )
    assert blocked <= 1

    # Crash scan: find a step where the crash lands inside an unsafe
    # section and demonstrate the containment bound.
    print("== Scenario 3: crash scan across the unsafe windows ==")
    worst = 0
    for crash_step in range(0, 40, 3):
        protocol = write_scan_protocol(3)
        spec = simulation_spec(protocol, 2, ["a", "b", "c"])
        scheduler = CrashingScheduler(RoundRobinScheduler(), {0: crash_step})
        execution = spec.run(scheduler, max_steps=40_000)
        blocked = 3 - len(merged_decisions(execution))
        marker = " <- inside an unsafe section" if blocked else ""
        print(f"  crash at step {crash_step:2d}: blocked {blocked}{marker}")
        worst = max(worst, blocked)
    print(f"\n  worst blocked with 1 crash: {worst} (BG bound: <= 1)")
    assert worst <= 1


if __name__ == "__main__":
    main()
