#!/usr/bin/env python3
"""Rediscovering the standard chromatic subdivision, experimentally.

The topological view of wait-free computation (the world the paper's
lower bounds live in) says: the possible output patterns of a one-shot
immediate snapshot form the *standard chromatic subdivision* of the input
simplex.  For 2 processes an edge subdivides into 3 edges; for 3
processes a triangle subdivides into **13** triangles.

This script does not assume any of that: it runs the Borowsky–Gafni
immediate-snapshot algorithm (registers only) under *every* schedule and
simply collects the distinct output profiles.  The counts 1 / 3 / 13
fall out of the exhaustive explorer — combinatorial topology, measured.

Run: ``python examples/chromatic_subdivision.py``
"""

from collections import Counter

from repro.algorithms.immediate_snapshot import immediate_snapshot_spec
from repro.runtime.explorer import Explorer


def label(view, inputs):
    members = sorted(pid for pid, _value in view)
    return "{" + ",".join(str(pid) for pid in members) + "}"


def explore(n):
    inputs = [f"x{i}" for i in range(n)]
    spec = immediate_snapshot_spec(inputs)
    explorer = Explorer(spec, max_depth=12 * n)
    profiles = Counter()
    for execution in explorer.executions():
        profile = tuple(
            label(execution.outputs[pid], inputs) for pid in range(n)
        )
        profiles[profile] += 1
    return profiles, explorer.stats


def main() -> None:
    expected = {1: 1, 2: 3, 3: 13}
    for n in (1, 2, 3):
        profiles, stats = explore(n)
        print(
            f"n = {n}: {stats.executions} maximal executions -> "
            f"{len(profiles)} distinct output profiles "
            f"(standard chromatic subdivision: {expected[n]} simplexes)"
        )
        assert len(profiles) == expected[n]
        if n <= 3:
            width = max(len(str(p)) for p in profiles)
            for profile, count in sorted(profiles.items()):
                views = " ".join(f"p{i}->{v}" for i, v in enumerate(profile))
                print(f"    {views:<{width + 12}}  reached by {count} schedules")
        print()
    print(
        "Each profile is one maximal simplex of the subdivision; the paper's"
        "\nimpossibility machinery (BG simulation, set-consensus lower bounds)"
        "\nis, at bottom, the combinatorics of exactly this structure."
    )


if __name__ == "__main__":
    main()
