#!/usr/bin/env python3
"""Explore the synchronization-power landscape (experiment E5 as a tour).

Prints:

* the agreement curves K(N) of n-consensus vs three O(n, k) levels — the
  'figure' implicit in the paper's result;
* the per-level separation certificates of the infinite chain;
* the (m, j)-set-consensus lattice statistics (nodes, edges, equivalence
  classes) computed from the implementability theorem;
* an ASCII rendering of the level-2 hierarchy graph.

Run: ``python examples/hierarchy_explorer.py``
"""

from math import ceil

import networkx as nx

from repro import family_agreement, family_chain, family_hierarchy_graph
from repro.core.hierarchy import equivalence_classes, set_consensus_lattice


def agreement_curves(n: int, k_levels, n_max: int) -> None:
    print(f"Best agreement K(N) for consensus number {n} (lower = stronger):")
    header = "  N            " + " ".join(f"{N:3d}" for N in range(1, n_max + 1))
    print(header)
    consensus_curve = [ceil(N / n) for N in range(1, n_max + 1)]
    print(f"  {n}-consensus  " + " ".join(f"{v:3d}" for v in consensus_curve))
    for k in k_levels:
        curve = [family_agreement(n, k, N) for N in range(1, n_max + 1)]
        marks = " ".join(
            f"{v:3d}" if v == c else f"{v:2d}*"
            for v, c in zip(curve, consensus_curve)
        )
        print(f"  O({n},{k})       " + marks)
    print("  (* = strictly better than n-consensus at that N)\n")


def main() -> None:
    agreement_curves(2, (1, 2, 3), 24)

    print("Separation certificates of the descending chain (n = 2):")
    for level in family_chain(2, 6):
        print("  " + level.certificate())
    print()

    print("The (m, j)-set-consensus lattice up to m = 10:")
    lattice = set_consensus_lattice(10)
    classes = equivalence_classes(10)
    print(f"  nodes: {lattice.number_of_nodes()}")
    print(f"  implementability edges: {lattice.number_of_edges()}")
    print(f"  equivalence classes: {len(classes)}")
    largest = max(classes, key=len)
    print(f"  largest class: {largest}")
    print()

    print("Level-2 hierarchy graph (edges = strictly stronger):")
    graph = family_hierarchy_graph(2, 4)
    for node in nx.topological_sort(graph):
        successors = sorted(graph.successors(node))
        if successors:
            print(f"  {node} -> {', '.join(successors)}")
    print()
    print(
        "Every O(2,k) node shares consensus number 2, yet the chain is "
        "strict: the consensus hierarchy cannot see these differences."
    )


if __name__ == "__main__":
    main()
