#!/usr/bin/env python3
"""The Common2 refutation, end to end (experiment E6 as a story).

Common2 conjectured that every deterministic object of consensus number 2
is implementable from 2-consensus objects and registers.  This script:

1. shows O(2, k) has consensus number >= 2 (its groups run consensus,
   checked over all schedules);
2. shows O(2, k) solves (2(k+2), k+1)-set consensus (model-checked at
   k = 1, randomized beyond);
3. shows the implementability theorem forbids any 2-consensus-based
   implementation — printing the arithmetic for a run of levels;
4. races the two object families head to head at N = 6.

Run: ``python examples/common2_refutation.py``
"""

from repro import (
    ConsensusTask,
    KSetConsensusTask,
    RandomScheduler,
    SoloScheduler,
    check_task_all_schedules,
    check_task_random_schedules,
    common2_refutation,
)
from repro.algorithms.consensus_from_n_consensus import (
    partition_set_consensus_spec as baseline_spec,
)
from repro.algorithms.helpers import inputs_dict
from repro.algorithms.set_consensus_from_family import (
    consensus_spec,
    set_consensus_spec,
)
from repro.core.common2 import refutation_series


def names(count):
    return [f"v{i}" for i in range(count)]


def main() -> None:
    print("== Step 1: O(2,1) really has consensus power 2 ==")
    inputs = ["left", "right"]
    report = check_task_all_schedules(
        consensus_spec(2, 1, inputs), ConsensusTask(), inputs_dict(inputs)
    )
    print(
        f"  2-process consensus via one group: "
        f"{report.executions_checked} schedules, ok={report.ok}"
    )

    print("\n== Step 2: but it solves (6, 2)-set consensus ==")
    inputs6 = names(6)
    report = check_task_all_schedules(
        set_consensus_spec(2, 1, inputs6), KSetConsensusTask(2), inputs_dict(inputs6)
    )
    print(f"  exhaustive: {report.executions_checked} schedules, ok={report.ok}")
    inputs8 = names(8)
    report = check_task_random_schedules(
        set_consensus_spec(2, 2, inputs8),
        KSetConsensusTask(3),
        inputs_dict(inputs8),
        seeds=range(300),
    )
    print(f"  O(2,2) at N=8, 300 random schedules: ok={report.ok}")

    print("\n== Step 3: no 2-consensus implementation can exist ==")
    for cert in refutation_series(5):
        print(" ", cert.statement())

    print("\n== Interlude: the conjecture's TRUE half, for contrast ==")
    from repro.algorithms.tournament_tas import WIN, tournament_spec
    from repro.analysis.linearizability import is_linearizable
    from repro.objects.rmw import TestAndSetSpec
    from repro.runtime.history import history_from_execution

    ok = 0
    for seed in range(100):
        execution = tournament_spec(4).run(RandomScheduler(seed))
        assert list(execution.outputs.values()).count(WIN) == 1
        assert is_linearizable(
            history_from_execution(execution), TestAndSetSpec()
        )
        ok += 1
    print(
        f"  test-and-set IS implementable from 2-consensus objects:\n"
        f"  doorway+tournament checked linearizable on {ok} schedules.\n"
        "  Common2 is a real class — it just does not contain everything\n"
        "  at consensus number 2."
    )

    print("\n== Step 4: head to head at N = 6 ==")
    family = set_consensus_spec(2, 1, inputs6)
    worst = max(
        len(family.run(RandomScheduler(seed)).distinct_outputs())
        for seed in range(300)
    )
    print(f"  O(2,1): worst over 300 adversaries = {worst} distinct decisions")
    baseline = baseline_spec(2, inputs6)
    forced = baseline.run(SoloScheduler([0, 2, 4, 1, 3, 5]))
    print(
        f"  2-consensus partition: solo adversary forces "
        f"{len(forced.distinct_outputs())} distinct decisions"
    )
    print("\nConclusion: a consensus-number-2 object outside Common2.")


if __name__ == "__main__":
    main()
